"""Flat tensor arena: the fused hot path must be bit-identical to the dict path.

The arena is a host-side storage optimization — parameters/gradients in two
contiguous buffers, optimizer and synchronization as whole-arena vector ops.
Its contract mirrors the backend seam's: it may change wall-clock cost only,
never a single bit of the training trajectory.  This suite trains the same
configuration with ``arena=True`` and ``arena=False`` and asserts exact
equality of losses, gradient norms, parameters, optimizer slot variables,
and stateful kernels — across workloads (stateless and BatchNorm), across
optimizers (including LAMB's segmented trust ratios), and across both
execution backends — plus a checkpoint round trip through the flat format.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Mapping,
    TrainerConfig,
    VirtualFlowTrainer,
    VirtualNodeSet,
    VirtualFlowExecutor,
    load_checkpoint,
    save_checkpoint,
)
from repro.data import make_dataset
from repro.framework import (
    LAMB,
    SGD,
    Adam,
    AdamW,
    ArenaView,
    FlatLayout,
    FlatTensorArena,
    Momentum,
    SoftmaxCrossEntropy,
    get_workload,
)
from repro.hardware import Cluster

OPTIMIZERS = {
    "sgd": lambda: SGD(0.05),
    "momentum": lambda: Momentum(0.05, momentum=0.9, nesterov=True),
    "adam": lambda: Adam(1e-3),
    "adamw": lambda: AdamW(1e-3, weight_decay=0.01),
    "lamb": lambda: LAMB(1e-3, weight_decay=0.01),
}


def _run(workload_name: str, opt_name: str, backend: str, arena: bool,
         steps: int = 3, batch: int = 16, vns: int = 4):
    """Train a few steps; return (executor, losses, grad_norms, val_metrics)."""
    workload = get_workload(workload_name)
    vn_set = VirtualNodeSet.even(batch, vns)
    mapping = Mapping.even(vn_set, Cluster.homogeneous("V100", 2))
    ex = VirtualFlowExecutor(
        workload=workload,
        model=workload.build_model(0),
        loss_fn=SoftmaxCrossEntropy(),
        optimizer=OPTIMIZERS[opt_name](),
        mapping=mapping,
        seed=0,
        backend=backend,
        arena=arena,
    )
    data = make_dataset(workload.dataset, n=2 * batch, seed=0)
    losses, norms = [], []
    for step in range(steps):
        result = ex.run_step(data.x_train[:batch], data.y_train[:batch],
                             epoch=0, step=step)
        losses.append(result.loss)
        norms.append(result.grad_norm)
    val = ex.evaluate(data.x_val, data.y_val)
    return ex, losses, norms, val


def _assert_exact(d: dict, f: dict) -> None:
    assert set(d) == set(f)
    for key in d:
        np.testing.assert_array_equal(d[key], f[key], err_msg=key)


class TestArenaEquivalence:
    """arena=True vs arena=False: bit-identical everything."""

    @pytest.mark.parametrize("workload", ["mlp_synthetic", "resnet56_cifar10",
                                          "bert_base_glue"])
    @pytest.mark.parametrize("backend", ["reference", "fused"])
    def test_workloads_and_backends(self, workload, backend):
        ex_d, loss_d, norm_d, val_d = _run(workload, "momentum", backend, arena=False)
        ex_f, loss_f, norm_f, val_f = _run(workload, "momentum", backend, arena=True)
        assert loss_d == loss_f
        assert norm_d == norm_f
        assert val_d == val_f
        _assert_exact(ex_d.model.parameters(), ex_f.model.parameters())
        _assert_exact(ex_d.optimizer.state_dict(), ex_f.optimizer.state_dict())
        for sd, sf in zip(ex_d.vn_states, ex_f.vn_states):
            assert sd.equals(sf)

    @pytest.mark.parametrize("opt_name", sorted(OPTIMIZERS))
    def test_every_optimizer(self, opt_name):
        ex_d, loss_d, _, _ = _run("mlp_synthetic", opt_name, "reference", arena=False)
        ex_f, loss_f, _, _ = _run("mlp_synthetic", opt_name, "reference", arena=True)
        assert loss_d == loss_f
        _assert_exact(ex_d.model.parameters(), ex_f.model.parameters())
        _assert_exact(ex_d.optimizer.state_dict(), ex_f.optimizer.state_dict())

    def test_uneven_shards_weighted_sync(self):
        """§5.2 weighting through the flat stack reduction, bit for bit."""
        runs = {}
        for arena in (False, True):
            trainer = VirtualFlowTrainer(TrainerConfig(
                workload="mlp_synthetic", global_batch_size=24,
                num_virtual_nodes=3, vn_sizes=(12, 8, 4), num_devices=2,
                dataset_size=48, arena=arena))
            history = trainer.train(2)
            runs[arena] = (history, trainer.executor.model.parameters())
        (hist_d, params_d), (hist_f, params_f) = runs[False], runs[True]
        for rd, rf in zip(hist_d, hist_f):
            assert rd.train_loss == rf.train_loss
            assert rd.val_loss == rf.val_loss
        _assert_exact(params_d, params_f)

    def test_checkpoint_flat_round_trip(self, tmp_path):
        """Arena checkpoints restore bit-exactly into arena AND dict executors."""
        path = str(tmp_path / "ck.npz")
        src, _, _, _ = _run("resnet56_cifar10", "adam", "reference", arena=True)
        save_checkpoint(src, path)
        snapshot = {k: v.copy() for k, v in src.model.parameters().items()}
        slots = src.optimizer.state_dict()
        for arena in (True, False):
            dst, _, _, _ = _run("resnet56_cifar10", "adam", "reference",
                                arena=arena, steps=1)
            load_checkpoint(dst, path)
            _assert_exact(snapshot, dst.model.parameters())
            _assert_exact(slots, dst.optimizer.state_dict())
            for ss, sd in zip(src.vn_states, dst.vn_states):
                assert ss.equals(sd)
            assert dst.optimizer.step_count == src.optimizer.step_count


class TestArenaMechanics:
    """Structural properties of the layout/view machinery."""

    def test_views_alias_the_flat_buffers(self):
        model = get_workload("mlp_synthetic").build_model(0)
        arena = FlatTensorArena.install(model)
        name = arena.layout.names[0]
        before = arena.params[name].copy()
        arena.params_flat += 1.0
        np.testing.assert_array_equal(arena.params[name], before + 1.0)
        # The module's own registered arrays are the same memory.
        first_param = next(iter(model.named_parameters()))[1]
        assert first_param.base is not None

    def test_install_is_idempotent(self):
        model = get_workload("mlp_synthetic").build_model(0)
        arena = FlatTensorArena.install(model)
        assert FlatTensorArena.install(model) is arena

    def test_parameters_and_gradients_return_arena_views(self):
        model = get_workload("mlp_synthetic").build_model(0)
        FlatTensorArena.install(model)
        assert isinstance(model.parameters(), ArenaView)
        assert isinstance(model.gradients(), ArenaView)
        assert set(model.parameters()) == set(dict(model.named_parameters()))

    def test_zero_grad_clears_whole_arena(self):
        model = get_workload("mlp_synthetic").build_model(0)
        arena = FlatTensorArena.install(model)
        arena.grads_flat[...] = 3.0
        model.zero_grad()
        assert not arena.grads_flat.any()

    def test_layout_is_canonical_sorted_order(self):
        layout = FlatLayout({"b": np.zeros(3), "a": np.zeros((2, 2))})
        assert layout.names == ("a", "b")
        assert layout.total_size == 7
        rng = np.random.default_rng(0)
        flat = rng.standard_normal(7)
        views = layout.views(flat)
        np.testing.assert_array_equal(views["a"].ravel(), flat[:4])
        np.testing.assert_array_equal(views["b"], flat[4:])

    def test_layout_rejects_mixed_dtypes_and_empty(self):
        with pytest.raises(ValueError, match="mixed dtypes"):
            FlatLayout({"a": np.zeros(2), "b": np.zeros(2, dtype=np.float32)})
        with pytest.raises(ValueError, match="non-empty"):
            FlatLayout({})

    def test_stacked_views_alias_the_matrix(self):
        """(rows,)+shape views over a packed state matrix are true aliases."""
        rng = np.random.default_rng(3)
        template = {"running_mean": np.zeros(6), "running_var": np.ones(6)}
        layout = FlatLayout(template)
        matrix = rng.standard_normal((4, layout.total_size))
        views = layout.stacked_views(matrix)
        assert set(views) == {"running_mean", "running_var"}
        for name in views:
            assert views[name].shape == (4, 6)
            assert views[name].base is not None  # no copies
        # Writes through a view land in the matrix (and vice versa).
        views["running_mean"][2] = 7.0
        np.testing.assert_array_equal(
            layout.views(matrix[2])["running_mean"], np.full(6, 7.0))
        with pytest.raises(ValueError, match="state matrix"):
            layout.stacked_views(matrix[:, :-1])

    def test_segment_dots_match_per_key_norms(self):
        rng = np.random.default_rng(7)
        template = {"w": rng.standard_normal((13, 5)), "b": rng.standard_normal(11)}
        layout = FlatLayout(template)
        flat = layout.pack(template)
        norms = np.sqrt(layout.segment_dots(flat))
        for i, name in enumerate(layout.names):
            assert norms[i] == float(np.linalg.norm(template[name]))

    def test_segment_sums_reduceat(self):
        layout = FlatLayout({"a": np.zeros(3), "b": np.zeros(2)})
        flat = np.array([1.0, 2.0, 3.0, 10.0, 20.0])
        np.testing.assert_array_equal(layout.segment_sums(flat), [6.0, 30.0])

    def test_spec_round_trip(self):
        template = {"w": np.zeros((4, 3)), "b": np.zeros(3)}
        layout = FlatLayout(template)
        rebuilt = FlatLayout.from_spec(**layout.spec())
        assert rebuilt == layout
