"""Analytic-vs-numeric gradient checks for every layer.

These are the bedrock tests: if a backward pass is wrong, every convergence
and invariance result downstream is meaningless.  Each test builds a tiny
layer, defines a scalar loss ``sum(w * forward(x))``, and compares the
analytic parameter/input gradients against central differences.
"""

from __future__ import annotations

import numpy as np

from repro.framework.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2D,
    LayerNorm,
    MaxPool2D,
    MultiHeadSelfAttention,
    ReLU,
    Residual,
    Sequential,
    Tanh,
    TransformerBlock,
    softmax,
    softmax_backward,
)
from tests.conftest import assert_grads_close, numeric_gradient


def _check_layer(layer, x, *, training=True, rng_seed=7, rtol=1e-5, atol=1e-7,
                 check_input_grad=True):
    """Gradient-check all parameters and (optionally) the input."""
    weight_rng = np.random.default_rng(99)
    # Fixed forward randomness: rebuild the generator identically every call.
    def fwd():
        rng = np.random.default_rng(rng_seed)
        return layer.forward(x, training=training, rng=rng)

    w = weight_rng.standard_normal(fwd().shape)

    def loss() -> float:
        return float(np.sum(w * fwd()))

    out = fwd()
    layer.zero_grad()
    grad_in = layer.backward(w.copy())

    params = layer.parameters()
    grads = layer.gradients()
    for key in params:
        numeric = numeric_gradient(loss, params[key])
        assert_grads_close(grads[key], numeric, rtol=rtol, atol=atol)
    if check_input_grad and np.issubdtype(x.dtype, np.floating):
        numeric_x = numeric_gradient(loss, x)
        assert_grads_close(grad_in, numeric_x, rtol=rtol, atol=atol)
    return out


def test_dense_gradients(rng):
    layer = Dense(5, 3, rng)
    x = rng.standard_normal((4, 5))
    _check_layer(layer, x)


def test_dense_3d_input(rng):
    layer = Dense(5, 3, rng)
    x = rng.standard_normal((2, 4, 5))
    _check_layer(layer, x)


def test_conv2d_gradients_same_padding(rng):
    layer = Conv2D(2, 3, 3, rng, padding="same")
    x = rng.standard_normal((2, 6, 6, 2))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_conv2d_gradients_valid_padding(rng):
    layer = Conv2D(2, 2, 3, rng, padding="valid")
    x = rng.standard_normal((2, 5, 5, 2))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_conv2d_strided(rng):
    layer = Conv2D(1, 2, 3, rng, stride=2, padding="same")
    x = rng.standard_normal((2, 7, 7, 1))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_batchnorm_gradients_training(rng):
    layer = BatchNorm(3)
    # Randomize gamma/beta so gradients are non-trivial.
    layer.params["gamma"][...] = rng.uniform(0.5, 1.5, 3)
    layer.params["beta"][...] = rng.standard_normal(3)
    x = rng.standard_normal((6, 3))
    # BatchNorm updates running stats each forward; freeze them for the check
    # by resetting before each call.
    saved = layer.state_dict()

    def fwd():
        layer.load_state_dict(saved)
        return layer.forward(x, training=True)

    w = rng.standard_normal((6, 3))

    def loss():
        return float(np.sum(w * fwd()))

    fwd()
    layer.zero_grad()
    grad_in = layer.backward(w.copy())
    for key in ("gamma", "beta"):
        numeric = numeric_gradient(loss, layer.params[key])
        assert_grads_close(layer.grads[key], numeric, rtol=1e-4, atol=1e-6)
    numeric_x = numeric_gradient(loss, x)
    assert_grads_close(grad_in, numeric_x, rtol=1e-4, atol=1e-6)


def test_batchnorm_gradients_inference(rng):
    layer = BatchNorm(3)
    layer.buffers["running_mean"][...] = rng.standard_normal(3)
    layer.buffers["running_var"][...] = rng.uniform(0.5, 2.0, 3)
    x = rng.standard_normal((4, 3))
    _check_layer(layer, x, training=False)


def test_batchnorm_4d_input(rng):
    layer = BatchNorm(2)
    x = rng.standard_normal((2, 3, 3, 2))
    saved = layer.state_dict()

    def fwd():
        layer.load_state_dict(saved)
        return layer.forward(x, training=True)

    w = rng.standard_normal(fwd().shape)

    def loss():
        return float(np.sum(w * fwd()))

    fwd()
    layer.zero_grad()
    grad_in = layer.backward(w.copy())
    numeric_x = numeric_gradient(loss, x)
    assert_grads_close(grad_in, numeric_x, rtol=1e-4, atol=1e-6)


def test_layernorm_gradients(rng):
    layer = LayerNorm(4)
    layer.params["gamma"][...] = rng.uniform(0.5, 1.5, 4)
    x = rng.standard_normal((3, 4))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_layernorm_3d(rng):
    layer = LayerNorm(4)
    x = rng.standard_normal((2, 3, 4))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_gelu_gradients(rng):
    x = rng.standard_normal((4, 5))
    _check_layer(GELU(), x)


def test_tanh_gradients(rng):
    x = rng.standard_normal((4, 5))
    _check_layer(Tanh(), x)


def test_relu_gradients(rng):
    # Keep values away from the kink at 0.
    x = rng.standard_normal((4, 5))
    x[np.abs(x) < 0.1] = 0.5
    _check_layer(ReLU(), x)


def test_maxpool_gradients(rng):
    x = rng.standard_normal((2, 4, 4, 2))
    _check_layer(MaxPool2D(2), x, rtol=1e-4, atol=1e-6)


def test_global_avg_pool_gradients(rng):
    x = rng.standard_normal((2, 4, 4, 3))
    _check_layer(GlobalAvgPool2D(), x)


def test_flatten_roundtrip(rng):
    x = rng.standard_normal((3, 2, 2, 2))
    layer = Flatten()
    out = layer.forward(x)
    assert out.shape == (3, 8)
    back = layer.backward(out.copy())
    assert back.shape == x.shape
    np.testing.assert_array_equal(back, x)


def test_embedding_gradients(rng):
    layer = Embedding(7, 3, rng)
    tokens = rng.integers(0, 7, size=(2, 4))
    w = rng.standard_normal((2, 4, 3))

    def loss():
        return float(np.sum(w * layer.forward(tokens)))

    layer.forward(tokens)
    layer.zero_grad()
    layer.backward(w.copy())
    numeric = numeric_gradient(loss, layer.params["table"])
    assert_grads_close(layer.grads["table"], numeric)


def test_attention_gradients(rng):
    layer = MultiHeadSelfAttention(dim=6, num_heads=2, rng=rng)
    x = rng.standard_normal((2, 3, 6))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_transformer_block_gradients(rng):
    layer = TransformerBlock(dim=4, num_heads=2, ffn_dim=8, rng=rng, dropout=0.0)
    x = rng.standard_normal((2, 3, 4))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_transformer_block_with_dropout_gradients(rng):
    layer = TransformerBlock(dim=4, num_heads=2, ffn_dim=8, rng=rng, dropout=0.3)
    x = rng.standard_normal((2, 3, 4))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_residual_gradients(rng):
    layer = Residual(Dense(4, 4, rng))
    x = rng.standard_normal((3, 4))
    _check_layer(layer, x)


def test_sequential_gradients(rng):
    layer = Sequential(Dense(4, 6, rng), GELU(), Dense(6, 2, rng))
    x = rng.standard_normal((3, 4))
    _check_layer(layer, x, rtol=1e-4, atol=1e-6)


def test_dropout_gradients(rng):
    layer = Dropout(0.4)
    x = rng.standard_normal((4, 5))
    _check_layer(layer, x)


def test_softmax_backward_matches_numeric(rng):
    z = rng.standard_normal((3, 4))
    w = rng.standard_normal((3, 4))

    def loss():
        return float(np.sum(w * softmax(z)))

    s = softmax(z)
    analytic = softmax_backward(s, w)
    numeric = numeric_gradient(loss, z)
    assert_grads_close(analytic, numeric)
