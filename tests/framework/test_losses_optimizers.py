"""Losses and optimizers: correctness, state handling, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework.losses import MSELoss, SoftmaxCrossEntropy
from repro.framework.optimizers import LAMB, SGD, Adam, AdamW, Momentum
from tests.conftest import assert_grads_close, numeric_gradient


class TestSoftmaxCrossEntropy:
    def test_matches_manual_value(self):
        loss = SoftmaxCrossEntropy()
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        targets = np.array([0, 1])
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert loss.forward(logits, targets) == pytest.approx(expected, rel=1e-9)

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((4, 5))
        targets = rng.integers(0, 5, size=4)

        def f():
            return loss.forward(logits, targets)

        f()
        analytic = loss.backward()
        numeric = numeric_gradient(f, logits)
        assert_grads_close(analytic, numeric)

    def test_label_smoothing_gradient(self, rng):
        loss = SoftmaxCrossEntropy(label_smoothing=0.1)
        logits = rng.standard_normal((3, 4))
        targets = rng.integers(0, 4, size=3)

        def f():
            return loss.forward(logits, targets)

        f()
        assert_grads_close(loss.backward(), numeric_gradient(f, logits))

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-6

    def test_bad_shapes_rejected(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(label_smoothing=1.0)


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()
        assert loss.forward(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_gradient(self, rng):
        loss = MSELoss()
        out = rng.standard_normal((3, 2))
        tgt = rng.standard_normal((3, 2))

        def f():
            return loss.forward(out, tgt)

        f()
        assert_grads_close(loss.backward(), numeric_gradient(f, out))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().forward(np.zeros((2, 2)), np.zeros((2, 3)))


def _quadratic_descends(optimizer, steps=200):
    """Any reasonable optimizer minimizes x^2 from x=5."""
    params = {"x": np.array([5.0])}
    for _ in range(steps):
        grads = {"x": 2 * params["x"]}
        optimizer.step(params, grads)
    return abs(float(params["x"][0]))


class TestOptimizers:
    @pytest.mark.parametrize("factory", [
        lambda: SGD(lr=0.1),
        lambda: Momentum(lr=0.05, momentum=0.9),
        lambda: Momentum(lr=0.05, momentum=0.9, nesterov=True),
        lambda: Adam(lr=0.1),
        lambda: AdamW(lr=0.1, weight_decay=0.0),
        lambda: LAMB(lr=0.05, weight_decay=0.0),
    ], ids=["sgd", "momentum", "nesterov", "adam", "adamw", "lamb"])
    def test_minimizes_quadratic(self, factory):
        assert _quadratic_descends(factory()) < 1e-2

    def test_sgd_update_rule(self):
        opt = SGD(lr=0.5)
        params = {"w": np.array([1.0, 2.0])}
        opt.step(params, {"w": np.array([2.0, 2.0])})
        np.testing.assert_allclose(params["w"], [0.0, 1.0])

    def test_momentum_accumulates_velocity(self):
        opt = Momentum(lr=1.0, momentum=0.5)
        params = {"w": np.array([0.0])}
        opt.step(params, {"w": np.array([1.0])})   # v=1, w=-1
        opt.step(params, {"w": np.array([1.0])})   # v=1.5, w=-2.5
        np.testing.assert_allclose(params["w"], [-2.5])

    def test_adam_bias_correction_first_step(self):
        opt = Adam(lr=0.1)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([3.0])})
        # After bias correction the first step is ~lr in the gradient direction.
        np.testing.assert_allclose(params["w"], [1.0 - 0.1], atol=1e-6)

    def test_missing_gradient_key_raises(self):
        opt = SGD(lr=0.1)
        with pytest.raises(KeyError):
            opt.step({"a": np.zeros(1)}, {})

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_update_is_in_place(self):
        opt = SGD(lr=0.1)
        w = np.array([1.0])
        params = {"w": w}
        opt.step(params, {"w": np.array([1.0])})
        assert w[0] == pytest.approx(0.9)  # the original array moved

    def test_momentum_state_roundtrip(self):
        opt = Momentum(lr=0.1, momentum=0.9)
        params = {"w": np.array([1.0])}
        opt.step(params, {"w": np.array([1.0])})
        state = opt.state_dict()
        opt2 = Momentum(lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        opt2.step_count = opt.step_count
        p1 = {"w": params["w"].copy()}
        p2 = {"w": params["w"].copy()}
        opt.step(p1, {"w": np.array([1.0])})
        opt2.step(p2, {"w": np.array([1.0])})
        np.testing.assert_array_equal(p1["w"], p2["w"])

    def test_adam_state_roundtrip(self):
        opt = Adam(lr=0.1)
        params = {"w": np.array([2.0])}
        for _ in range(3):
            opt.step(params, {"w": params["w"].copy()})
        state = opt.state_dict()
        opt2 = Adam(lr=0.1)
        opt2.load_state_dict(state)
        opt2.step_count = opt.step_count
        p1 = {"w": params["w"].copy()}
        p2 = {"w": params["w"].copy()}
        opt.step(p1, {"w": np.array([1.0])})
        opt2.step(p2, {"w": np.array([1.0])})
        np.testing.assert_array_equal(p1["w"], p2["w"])

    def test_slot_counts_for_memory_model(self):
        assert SGD(lr=1).num_slots_per_param() == 0
        assert Momentum(lr=1).num_slots_per_param() == 1
        assert Adam(lr=1).num_slots_per_param() == 2

    def test_adamw_decays_weights(self):
        opt = AdamW(lr=0.1, weight_decay=0.5)
        params = {"w": np.array([10.0])}
        opt.step(params, {"w": np.array([0.0])})
        assert params["w"][0] < 10.0

    def test_lamb_trust_ratio_scales_update(self):
        # LAMB normalizes by update norm; with a huge gradient the step is
        # bounded by lr * ||w||, unlike Adam's unbounded step.
        lamb = LAMB(lr=0.1, weight_decay=0.0)
        params = {"w": np.array([1.0, 0.0])}
        lamb.step(params, {"w": np.array([1e6, 0.0])})
        assert np.linalg.norm(params["w"] - np.array([1.0, 0.0])) <= 0.1 + 1e-9
