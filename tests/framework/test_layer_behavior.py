"""Behavioural tests for layers: shapes, statefulness, determinism, errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Embedding,
    MaxPool2D,
    MultiHeadSelfAttention,
    Sequential,
    softmax,
)


class TestModuleParameterPlumbing:
    def test_namespaced_parameters(self, rng):
        model = Sequential(Dense(3, 4, rng), Dense(4, 2, rng))
        keys = set(model.parameters())
        assert keys == {"0.w", "0.b", "1.w", "1.b"}

    def test_set_parameters_roundtrip(self, rng):
        model = Sequential(Dense(3, 4, rng), Dense(4, 2, rng))
        snapshot = {k: v.copy() for k, v in model.parameters().items()}
        for v in model.parameters().values():
            v += 1.0
        model.set_parameters(snapshot)
        for k, v in model.parameters().items():
            np.testing.assert_array_equal(v, snapshot[k])

    def test_set_parameters_preserves_aliasing(self, rng):
        """Updating through the flat dict must hit the layer's own array."""
        layer = Dense(2, 2, rng)
        model = Sequential(layer)
        model.set_parameters({k: np.ones_like(v) for k, v in model.parameters().items()})
        np.testing.assert_array_equal(layer.params["w"], np.ones((2, 2)))

    def test_set_parameters_missing_key_raises(self, rng):
        model = Sequential(Dense(2, 2, rng))
        with pytest.raises(KeyError):
            model.set_parameters({"0.w": np.zeros((2, 2))})

    def test_set_parameters_shape_mismatch_raises(self, rng):
        model = Sequential(Dense(2, 2, rng))
        bad = {k: np.zeros((3, 3)) for k in model.parameters()}
        with pytest.raises(ValueError):
            model.set_parameters(bad)

    def test_zero_grad_clears_all(self, rng):
        model = Sequential(Dense(3, 4, rng), Dense(4, 2, rng))
        x = rng.standard_normal((2, 3))
        model.backward_ready = model.forward(x)
        model.backward(np.ones((2, 2)))
        assert any(np.any(g != 0) for g in model.gradients().values())
        model.zero_grad()
        assert all(np.all(g == 0) for g in model.gradients().values())

    def test_num_parameters(self, rng):
        model = Dense(3, 4, rng)
        assert model.num_parameters() == 3 * 4 + 4


class TestBatchNormState:
    def test_running_stats_update_in_training(self, rng):
        bn = BatchNorm(3)
        x = rng.standard_normal((16, 3)) + 5.0
        before = bn.state_dict()
        bn.forward(x, training=True)
        after = bn.state_dict()
        assert not np.array_equal(before["running_mean"], after["running_mean"])

    def test_running_stats_frozen_in_inference(self, rng):
        bn = BatchNorm(3)
        x = rng.standard_normal((16, 3))
        before = bn.state_dict()
        bn.forward(x, training=False)
        after = bn.state_dict()
        np.testing.assert_array_equal(before["running_mean"], after["running_mean"])

    def test_state_dict_returns_copies(self):
        bn = BatchNorm(2)
        state = bn.state_dict()
        state["running_mean"] += 10
        np.testing.assert_array_equal(bn.buffers["running_mean"], np.zeros(2))

    def test_load_state_dict_missing_key(self):
        bn = BatchNorm(2)
        with pytest.raises(KeyError):
            bn.load_state_dict({"running_mean": np.zeros(2)})

    def test_training_output_is_normalized(self, rng):
        bn = BatchNorm(4)
        x = rng.standard_normal((64, 4)) * 3 + 7
        out = bn.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=0), 0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1, atol=1e-3)


class TestDropout:
    def test_inference_is_identity(self, rng):
        d = Dropout(0.5)
        x = rng.standard_normal((4, 4))
        np.testing.assert_array_equal(d.forward(x, training=False), x)

    def test_training_requires_rng(self, rng):
        d = Dropout(0.5)
        with pytest.raises(ValueError, match="rng"):
            d.forward(rng.standard_normal((2, 2)), training=True, rng=None)

    def test_zero_rate_is_identity(self, rng):
        d = Dropout(0.0)
        x = rng.standard_normal((4, 4))
        np.testing.assert_array_equal(
            d.forward(x, training=True, rng=np.random.default_rng(0)), x
        )

    def test_same_rng_same_mask(self, rng):
        d = Dropout(0.5)
        x = rng.standard_normal((8, 8))
        a = d.forward(x, training=True, rng=np.random.default_rng(42))
        b = d.forward(x, training=True, rng=np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_expected_scale_preserved(self, rng):
        d = Dropout(0.3)
        x = np.ones((200, 200))
        out = d.forward(x, training=True, rng=np.random.default_rng(1))
        assert abs(out.mean() - 1.0) < 0.02

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestShapes:
    def test_conv_same_preserves_spatial(self, rng):
        conv = Conv2D(3, 8, 3, rng, padding="same")
        out = conv.forward(rng.standard_normal((2, 9, 9, 3)))
        assert out.shape == (2, 9, 9, 8)

    def test_conv_valid_shrinks(self, rng):
        conv = Conv2D(1, 1, 3, rng, padding="valid")
        out = conv.forward(rng.standard_normal((1, 5, 5, 1)))
        assert out.shape == (1, 3, 3, 1)

    def test_conv_stride_two(self, rng):
        conv = Conv2D(1, 4, 3, rng, stride=2, padding="same")
        out = conv.forward(rng.standard_normal((1, 8, 8, 1)))
        assert out.shape == (1, 4, 4, 4)

    def test_maxpool_shape_and_values(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = MaxPool2D(2).forward(x)
        assert out.shape == (1, 2, 2, 1)
        np.testing.assert_array_equal(out.ravel(), [5, 7, 13, 15])

    def test_maxpool_indivisible_raises(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            MaxPool2D(2).forward(rng.standard_normal((1, 5, 5, 1)))

    def test_attention_shape(self, rng):
        attn = MultiHeadSelfAttention(8, 2, rng)
        out = attn.forward(rng.standard_normal((3, 5, 8)))
        assert out.shape == (3, 5, 8)

    def test_attention_dim_head_mismatch(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            MultiHeadSelfAttention(7, 2, rng)

    def test_embedding_out_of_range(self, rng):
        emb = Embedding(5, 3, rng)
        with pytest.raises(ValueError, match="out of range"):
            emb.forward(np.array([[0, 5]]))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        s = softmax(rng.standard_normal((6, 9)))
        np.testing.assert_allclose(s.sum(axis=-1), 1.0)

    def test_stability_with_large_logits(self):
        s = softmax(np.array([[1000.0, 1000.0, -1000.0]]))
        assert np.all(np.isfinite(s))
        np.testing.assert_allclose(s[0, :2], 0.5, atol=1e-12)

    def test_shift_invariance(self, rng):
        z = rng.standard_normal((2, 5))
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))
