"""Models and the workload registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.framework.models import (
    MLPClassifier,
    ResourceFootprint,
    SmallCNN,
    TinyBert,
    WORKLOADS,
    build_model,
    get_workload,
)
from repro.utils.units import GB, MB


class TestModelConstruction:
    def test_build_is_deterministic(self):
        a = build_model("mlp_synthetic", seed=3)
        b = build_model("mlp_synthetic", seed=3)
        pa, pb = a.parameters(), b.parameters()
        assert set(pa) == set(pb)
        for k in pa:
            np.testing.assert_array_equal(pa[k], pb[k])

    def test_different_seeds_differ(self):
        a = build_model("mlp_synthetic", seed=1)
        b = build_model("mlp_synthetic", seed=2)
        assert any(not np.array_equal(a.parameters()[k], b.parameters()[k])
                   for k in a.parameters())

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_every_workload_builds_and_forwards(self, name):
        wl = get_workload(name)
        model = wl.build_model(0)
        from repro.data import make_dataset

        ds = make_dataset(wl.dataset, n=64, seed=0)
        out = model.forward(ds.x_train[:4], training=False)
        assert out.shape == (4, wl.num_classes)
        assert np.all(np.isfinite(out))

    def test_mlp_shapes(self, rng):
        model = MLPClassifier(input_dim=8, hidden_dim=16, num_classes=3, rng=rng)
        out = model.forward(rng.standard_normal((5, 8)))
        assert out.shape == (5, 3)

    def test_cnn_rejects_bad_image_size(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            SmallCNN(image_size=6, channels=3, num_classes=2, rng=rng, stages=2)

    def test_tinybert_seq_len_check(self, rng):
        model = TinyBert(vocab_size=16, seq_len=8, dim=8, num_heads=2,
                         num_layers=1, num_classes=2, rng=rng)
        with pytest.raises(ValueError, match="sequence length"):
            model.forward(np.zeros((2, 5), dtype=int))

    def test_cnn_has_batchnorm_state(self, rng):
        model = SmallCNN(image_size=8, channels=3, num_classes=2, rng=rng)
        state = model.state_dict()
        assert any("running_mean" in k for k in state)


class TestResourceFootprint:
    def test_wave_bytes_composition(self):
        fp = ResourceFootprint(param_bytes=100, activation_bytes_per_example=10,
                               input_bytes_per_example=1, kernel_temp_bytes=5,
                               other_bytes=7)
        # params + grad buffer + 1 optimizer slot + batch*(act+in) + temp + other
        assert fp.wave_bytes(4, optimizer_slots=1) == 100 * 3 + 4 * 11 + 5 + 7

    def test_grad_buffer_flag(self):
        fp = ResourceFootprint(param_bytes=100, activation_bytes_per_example=1,
                               input_bytes_per_example=0, kernel_temp_bytes=0,
                               other_bytes=0)
        assert fp.wave_bytes(0, 1, grad_buffer=True) - fp.wave_bytes(0, 1, grad_buffer=False) == 100

    def test_max_batch_inverse_of_wave_bytes(self):
        fp = ResourceFootprint(param_bytes=10 * MB, activation_bytes_per_example=MB,
                               input_bytes_per_example=0, kernel_temp_bytes=0,
                               other_bytes=0)
        cap = 100 * MB
        b = fp.max_batch(cap, optimizer_slots=1)
        assert fp.wave_bytes(b, 1) <= cap < fp.wave_bytes(b + 1, 1)

    def test_max_batch_zero_when_model_does_not_fit(self):
        fp = ResourceFootprint(param_bytes=10 * GB, activation_bytes_per_example=MB,
                               input_bytes_per_example=0)
        assert fp.max_batch(GB, optimizer_slots=1) == 0

    def test_negative_batch_rejected(self):
        fp = ResourceFootprint(param_bytes=1, activation_bytes_per_example=1,
                               input_bytes_per_example=0)
        with pytest.raises(ValueError):
            fp.wave_bytes(-1)


class TestPaperCalibration:
    """The footprints must reproduce the paper's observed capacities."""

    def test_resnet50_v100_max_batch_is_256_on_grid(self):
        wl = get_workload("resnet50_imagenet")
        from repro.hardware import get_spec
        from repro.utils.validation import power_of_two_like_sizes

        cap = wl.footprint.max_batch(get_spec("V100").memory_bytes, wl.optimizer_slots)
        grid = power_of_two_like_sizes(cap)
        assert grid[-1] == 256  # §6.2.1: a V100 fits a batch of 256

    def test_resnet50_2080ti_max_batch_is_192_on_grid(self):
        wl = get_workload("resnet50_imagenet")
        from repro.hardware import get_spec
        from repro.utils.validation import power_of_two_like_sizes

        cap = wl.footprint.max_batch(get_spec("RTX2080Ti").memory_bytes, wl.optimizer_slots)
        assert power_of_two_like_sizes(cap)[-1] == 192  # Fig 18

    def test_bert_large_2080ti_max_batch_is_4(self):
        wl = get_workload("bert_large_glue")
        from repro.hardware import get_spec

        cap = wl.footprint.max_batch(get_spec("RTX2080Ti").memory_bytes, wl.optimizer_slots)
        assert cap == 4  # Fig 18

    def test_bert_base_batch_64_does_not_fit_one_v100(self):
        wl = get_workload("bert_base_glue")
        from repro.hardware import get_spec

        cap = wl.footprint.max_batch(get_spec("V100").memory_bytes, wl.optimizer_slots)
        assert cap < 64  # Table 2: batch 64 would not fit on 1 V100
        assert cap >= 8  # but the per-wave batches used (8) do fit

    def test_grad_buffer_equals_model_size(self):
        # §3.3: the gradient buffer is the same size as the model.
        for wl in WORKLOADS.values():
            fixed_with = wl.footprint.wave_bytes(0, wl.optimizer_slots, grad_buffer=True)
            fixed_without = wl.footprint.wave_bytes(0, wl.optimizer_slots, grad_buffer=False)
            assert fixed_with - fixed_without == wl.footprint.param_bytes

    def test_learning_rate_override(self):
        wl = get_workload("resnet56_cifar10")
        assert wl.build_optimizer().lr == pytest.approx(0.1)
        assert wl.build_optimizer(0.6).lr == pytest.approx(0.6)
        with pytest.raises(ValueError):
            wl.build_optimizer(-1.0)
