"""Causal attention masking."""

from __future__ import annotations

import numpy as np

from repro.framework.layers import MultiHeadSelfAttention
from tests.conftest import assert_grads_close, numeric_gradient


class TestCausalMask:
    def test_future_positions_do_not_affect_past_outputs(self, rng):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, rng=rng, causal=True)
        x = rng.standard_normal((1, 5, 8))
        base = attn.forward(x)
        perturbed = x.copy()
        perturbed[0, 4] += 10.0  # change only the LAST position
        out = attn.forward(perturbed)
        # Positions 0..3 must be unchanged; position 4 may change.
        np.testing.assert_allclose(out[0, :4], base[0, :4], rtol=1e-12)
        assert not np.allclose(out[0, 4], base[0, 4])

    def test_non_causal_leaks_future(self, rng):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, rng=rng, causal=False)
        x = rng.standard_normal((1, 5, 8))
        base = attn.forward(x)
        perturbed = x.copy()
        perturbed[0, 4] += 10.0
        out = attn.forward(perturbed)
        assert not np.allclose(out[0, 0], base[0, 0])

    def test_first_position_attends_only_to_itself(self, rng):
        attn = MultiHeadSelfAttention(dim=4, num_heads=1, rng=rng, causal=True)
        x = rng.standard_normal((1, 3, 4))
        attn.forward(x)
        # The cached attention matrix's first row is one-hot on position 0.
        _, _, _, _, probs, _, _ = attn._cache
        np.testing.assert_allclose(probs[0, 0, 0], [1.0, 0.0, 0.0], atol=1e-12)

    def test_causal_gradients_numeric(self, rng):
        attn = MultiHeadSelfAttention(dim=4, num_heads=2, rng=rng, causal=True)
        x = rng.standard_normal((2, 3, 4))
        w = rng.standard_normal((2, 3, 4))

        def loss():
            return float(np.sum(w * attn.forward(x)))

        attn.forward(x)
        attn.zero_grad()
        grad_in = attn.backward(w.copy())
        numeric_x = numeric_gradient(loss, x)
        assert_grads_close(grad_in, numeric_x, rtol=1e-4, atol=1e-6)
        for key, param in attn.parameters().items():
            numeric = numeric_gradient(loss, param)
            assert_grads_close(attn.gradients()[key], numeric, rtol=1e-4, atol=1e-6)
