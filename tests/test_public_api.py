"""The public API surface: everything documented in the README must import."""

from __future__ import annotations

import importlib

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"


@pytest.mark.parametrize("module", [
    "repro.core", "repro.framework", "repro.hardware", "repro.data",
    "repro.profiler", "repro.hetero", "repro.elastic", "repro.sched",
    "repro.baselines", "repro.serving", "repro.utils",
])
def test_subpackage_all_exports(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.__all__ lists missing name {name!r}"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart_snippet_runs():
    """The exact snippet from the package docstring must work."""
    from repro import TrainerConfig, VirtualFlowTrainer

    trainer = VirtualFlowTrainer(TrainerConfig(
        workload="mlp_synthetic", global_batch_size=64,
        num_virtual_nodes=8, device_type="V100", num_devices=2,
        dataset_size=256,
    ))
    trainer.train(epochs=1)
    trainer.resize(num_devices=1)
    history = trainer.train(epochs=1)  # returns the cumulative history
    assert len(history) == 2
