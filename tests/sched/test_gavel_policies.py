"""Gavel scheduling policies beyond LAS."""

from __future__ import annotations

import pytest

from repro.elastic.jobs import JobSpec
from repro.sched import GavelSimulator

CLUSTER = {"V100": 2, "P100": 4}


def _spec(job_id, steps, arrival=0.0):
    return JobSpec(job_id=job_id, workload="resnet56_cifar10",
                   global_batch_size=128, total_virtual_nodes=4,
                   demand_gpus=2, total_steps=steps, arrival_time=arrival)


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            GavelSimulator(CLUSTER, policy="wfq")

    def test_all_policies_complete(self):
        trace = [_spec(0, 20000), _spec(1, 4000, arrival=360.0)]
        for policy in GavelSimulator.POLICIES:
            result = GavelSimulator(CLUSTER, policy=policy).run(trace)
            assert all(j.finished for j in result.jobs.values())

    def test_srtf_prefers_short_job(self):
        """Under SRTF the short job gets the fast GPUs and finishes sooner
        than it does under FIFO."""
        trace = [_spec(0, 60000), _spec(1, 3000, arrival=360.0)]
        srtf = GavelSimulator(CLUSTER, policy="srtf").run(trace)
        fifo = GavelSimulator(CLUSTER, policy="fifo").run(trace)
        assert srtf.jobs[1].jct() <= fifo.jobs[1].jct()

    def test_fifo_serves_in_arrival_order(self):
        sim = GavelSimulator(CLUSTER, policy="fifo")
        trace = [_spec(0, 30000), _spec(1, 30000, arrival=1.0)]
        result = sim.run(trace)
        # Job 0 keeps the fast GPUs: its first allocation is the V100s.
        first = next(a for _, a in result.jobs[0].allocation_log if a)
        assert "V100" in first

    def test_policy_changes_outcomes(self):
        trace = [_spec(0, 60000), _spec(1, 3000, arrival=360.0),
                 _spec(2, 10000, arrival=720.0)]
        jcts = {}
        for policy in GavelSimulator.POLICIES:
            result = GavelSimulator(CLUSTER, policy=policy).run(trace)
            jcts[policy] = tuple(round(result.jobs[j].jct()) for j in (0, 1, 2))
        assert len(set(jcts.values())) > 1  # policies genuinely differ
