"""Co-scheduled training + serving on one shared pool."""

from __future__ import annotations

import pytest

from repro.elastic import ServingPhase, spike_phases
from repro.sched import resident_training_jobs, run_cosched

SLO = 0.035


def _spiky(base=400.0, spike=4.0):
    return spike_phases(base, spike, base_duration=2.0, spike_duration=1.0)


def _run(phases=None, **kwargs):
    kwargs.setdefault("pool_devices", 8)
    kwargs.setdefault("initial_serving", 2)
    kwargs.setdefault("resize_delay", 0.25)
    kwargs.setdefault("seed", 1)
    if kwargs.get("autoscale", True):
        kwargs.setdefault("slo_p99", SLO)
    jobs = kwargs.pop("train_specs", None) or resident_training_jobs(
        2, demand_gpus=4)
    return run_cosched("mlp_synthetic", phases or _spiky(), jobs, **kwargs)


class TestHarvest:
    def test_spike_harvests_and_restores_training_budget(self):
        report = _run()
        assert report.harvests, "the spike must move the training budget"
        shrinks = [(b, a) for _, b, a in report.harvests if a < b]
        grows = [(b, a) for _, b, a in report.harvests if a > b]
        assert shrinks, "serving never harvested training GPUs"
        assert grows, "training never got its devices back"
        # The final budget hands training everything serving released.
        final_budget = report.harvests[-1][2]
        assert final_budget == report.pool_devices - report.serving.final_devices

    def test_budget_moves_chain_contiguously(self):
        report = _run()
        for (_, _, after), (_, before, _) in zip(report.harvests,
                                                 report.harvests[1:]):
            assert after == before

    def test_train_floor_is_never_harvested(self):
        report = _run(train_floor=4)
        for _, _, after in report.harvests:
            assert after >= 4
        for _, _, new, _ in report.serving.scaling_events:
            assert new <= report.pool_devices - 4

    def test_training_pays_resize_stalls_for_the_spike(self):
        # Harvest + reclaim show up as resizes in the jobs' allocation logs.
        report = _run()
        assert any(j.resizes >= 1 for j in report.jobs.values())

    def test_static_partition_never_moves(self):
        report = _run(autoscale=False, slo_p99=None, initial_serving=4)
        assert report.harvests == []
        assert report.serving.scaling_events == []
        assert report.serving.final_devices == 4
        for job in report.jobs.values():
            assert job.resizes == 0


class TestAccounting:
    def test_device_seconds_conservation_across_tenants(self):
        report = _run()
        serving = report.serving.device_seconds
        training = sum(report.train_device_seconds.values())
        # Busy seconds can never exceed the pool (idle makes up the rest);
        # run_cosched audits exact conservation inside the pool itself.
        assert serving + training <= report.pool_devices * report.duration + 1e-9
        assert serving > 0 and training > 0

    def test_goodput_reflects_partial_progress(self):
        report = _run()
        assert report.train_steps > 0
        assert report.train_goodput() == pytest.approx(
            report.train_steps / report.duration)
        # Resident jobs are sized to outlast the serving trace.
        for job in report.jobs.values():
            assert job.steps_done < job.spec.total_steps

    def test_deterministic_under_fixed_seed(self):
        a, b = _run(), _run()
        assert a.summary(slo_p99=SLO) == b.summary(slo_p99=SLO)
        assert a.harvests == b.harvests

    def test_trace_out_round_trip(self, tmp_path):
        from repro.runtime import read_trace

        path = str(tmp_path / "cosched.jsonl")
        report = _run(trace=path)
        events = read_trace(path)
        assert len(events) == report.events_processed
        kinds = {e["kind"] for e in events}
        assert {"arrival", "admit", "dispatch", "complete"} <= kinds
        actors = {e["actor"] for e in events}
        assert {"train", "router"} <= actors
        # One schema: every line carries the same envelope.
        for e in events:
            assert set(e) == {"t", "seq", "kind", "actor", "data"}
        times = [e["t"] for e in events]
        assert times == sorted(times)


class TestValidation:
    def test_needs_training_jobs(self):
        with pytest.raises(ValueError, match="training jobs"):
            run_cosched("mlp_synthetic", _spiky(), [], pool_devices=8,
                        slo_p99=SLO)

    def test_autoscale_needs_slo(self):
        with pytest.raises(ValueError, match="SLO"):
            _run(slo_p99=None)

    def test_initial_serving_respects_floor(self):
        with pytest.raises(ValueError, match="initial_serving"):
            _run(initial_serving=7, train_floor=4)

    def test_resident_jobs_validation(self):
        with pytest.raises(ValueError):
            resident_training_jobs(0)
        with pytest.raises(ValueError, match="divide"):
            resident_training_jobs(1, demand_gpus=3, global_batch_size=64,
                                   vn_per_gpu=1)

    def test_short_quiet_trace_still_reports(self):
        report = _run(phases=[ServingPhase(0.5, 50.0)])
        assert report.duration > 0
        assert report.harvests == []
