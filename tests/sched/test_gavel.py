"""Gavel reimplementation and the heterogeneous-allocation extension (§6.5.2)."""

from __future__ import annotations

import pytest

from repro.elastic.jobs import JobSpec
from repro.elastic.trace import generate_trace
from repro.sched import GavelSimulator, hetero_split, hetero_throughput

CLUSTER = {"V100": 4, "P100": 8, "K80": 16}


def _spec(job_id=0, steps=500, arrival=0.0, demand=4, workload="resnet50_imagenet",
          batch=2048, vns=8):
    return JobSpec(job_id=job_id, workload=workload, global_batch_size=batch,
                   total_virtual_nodes=vns, demand_gpus=demand,
                   total_steps=steps, arrival_time=arrival)


class TestHeteroThroughputModel:
    def test_split_proportional_to_speed(self):
        spec = _spec()
        shares = hetero_split(spec, {"V100": 1, "P100": 1})
        assert shares["V100"] > shares["P100"]  # V100 is 4x faster
        assert sum(shares.values()) == spec.global_batch_size

    def test_split_empty_rejected(self):
        with pytest.raises(ValueError):
            hetero_split(_spec(), {})

    def test_adding_devices_increases_throughput(self):
        spec = _spec()
        base = hetero_throughput(spec, {"K80": 16})
        more = hetero_throughput(spec, {"K80": 16, "P100": 5})
        assert more > base

    def test_figure16_rightmost_job_shape(self):
        """Fig 16: +5 P100s on top of 16 K80s improved throughput ~34%."""
        spec = _spec(batch=2048, vns=16)
        base = hetero_throughput(spec, {"K80": 16})
        more = hetero_throughput(spec, {"K80": 16, "P100": 5})
        gain = more / base - 1
        assert 0.1 < gain < 1.5  # meaningful but not absurd

    def test_homogeneous_matches_jobspec_model_roughly(self):
        spec = _spec(demand=4, batch=2048, vns=8)
        a = 1.0 / spec.step_time(4)
        b = hetero_throughput(spec, {"V100": 4})
        assert b == pytest.approx(a, rel=0.25)


class TestGavelSimulator:
    def test_all_jobs_finish(self):
        trace = [_spec(job_id=i, arrival=i * 600.0, steps=300) for i in range(4)]
        result = GavelSimulator(CLUSTER).run(trace)
        assert all(j.finished for j in result.jobs.values())

    def test_las_prefers_low_attained_service(self):
        """A newcomer must get the fast GPUs over a long-running job."""
        sim = GavelSimulator(CLUSTER)
        trace = [
            _spec(job_id=0, steps=2000, arrival=0.0),
            _spec(job_id=1, steps=300, arrival=3600.0),
        ]
        result = sim.run(trace)
        late = result.jobs[1]
        first_alloc = next(a for _, a in late.allocation_log if a)
        assert "V100" in first_alloc  # newcomer has zero attained service

    def test_hetero_extension_reduces_avg_jct(self):
        trace = generate_trace(12, jobs_per_hour=6, seed=2, target_runtime=2400)
        base = GavelSimulator(CLUSTER, heterogeneous=False).run(trace)
        ht = GavelSimulator(CLUSTER, heterogeneous=True).run(trace)
        assert ht.avg_jct() < base.avg_jct()

    def test_stock_gavel_never_mixes_types(self):
        trace = generate_trace(8, jobs_per_hour=6, seed=3, target_runtime=1800)
        result = GavelSimulator(CLUSTER, heterogeneous=False).run(trace)
        for job in result.jobs.values():
            assert not job.used_heterogeneous()

    def test_extension_produces_hetero_rounds_at_low_load(self):
        trace = generate_trace(8, jobs_per_hour=4, seed=2, target_runtime=2400)
        result = GavelSimulator(CLUSTER, heterogeneous=True).run(trace)
        assert result.hetero_round_fraction() > 0

    def test_benefit_diminishes_at_high_load(self):
        """Figure 15: the HT advantage shrinks as arrival rate grows."""
        gains = []
        for rate in (3, 12):
            trace = generate_trace(12, jobs_per_hour=rate, seed=2,
                                   target_runtime=2400)
            base = GavelSimulator(CLUSTER, heterogeneous=False).run(trace)
            ht = GavelSimulator(CLUSTER, heterogeneous=True).run(trace)
            gains.append((base.avg_jct() - ht.avg_jct()) / base.avg_jct())
        assert gains[0] > gains[1]

    def test_round_accounting(self):
        result = GavelSimulator(CLUSTER).run([_spec(steps=100)])
        job = result.jobs[0]
        assert job.attained_service > 0
        assert job.jct() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GavelSimulator({})
        with pytest.raises(ValueError):
            GavelSimulator(CLUSTER, round_duration=0)
        with pytest.raises(ValueError):
            GavelSimulator(CLUSTER).run([])
        with pytest.raises(KeyError):
            GavelSimulator({"H100": 2})
