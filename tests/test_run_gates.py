"""The benchmark gate driver: registry completeness and retry reporting."""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

BENCH_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir, "benchmarks")


@pytest.fixture()
def run_gates():
    """A fresh run_gates module instance (its HERE gets monkeypatched)."""
    name = "run_gates_under_test"
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(BENCH_DIR, "run_gates.py"))
    module = importlib.util.module_from_spec(spec)
    # Dataclass construction resolves the module through sys.modules, so
    # the entry must exist while the module body executes.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(name, None)


class TestRegistry:
    def test_every_bench_json_emitter_is_registered(self, run_gates, capsys):
        # The real tree: any benchmark emitting a BENCH_*.json that is not
        # a registered gate fails CI (and this test) with its name.
        assert run_gates.check_registry() == 0
        assert "every BENCH_*.json emitter is registered" in \
            capsys.readouterr().out

    def test_unregistered_emitter_is_reported(self, run_gates, monkeypatch,
                                              tmp_path, capsys):
        (tmp_path / "bench_rogue.py").write_text(
            "from _common import save_bench_json\n"
            "save_bench_json('rogue', {})\n")
        (tmp_path / "bench_quiet.py").write_text("pass\n")  # emits nothing
        monkeypatch.setattr(run_gates, "HERE", str(tmp_path))
        assert run_gates.check_registry() == 1
        err = capsys.readouterr().err
        assert "bench_rogue.py" in err and "UNREGISTERED" in err
        assert "bench_quiet.py" not in err

    def test_tenant_fairness_is_a_deterministic_gate(self, run_gates):
        by_name = {g.name: g for g in run_gates.GATES}
        gate = by_name["tenant_fairness"]
        assert gate.script == "bench_tenant_fairness.py"
        assert gate.smoke and gate.gate
        assert not gate.wall_clock   # simulated time: no retry, no noise

    def test_check_registry_cli_mode(self, run_gates, capsys):
        assert run_gates.main(["--check-registry"]) == 0
        capsys.readouterr()


class TestRetryReporting:
    def _failing_driver(self, run_gates, monkeypatch):
        calls = []

        def fake_run(argv):
            calls.append(list(argv))
            return 1

        monkeypatch.setattr(run_gates, "_run", fake_run)
        return calls

    def test_wall_clock_gate_retries_and_reports_real_failure(
            self, run_gates, monkeypatch, capsys):
        calls = self._failing_driver(run_gates, monkeypatch)
        assert run_gates.run_gates(["arena_fusion"]) == 1
        assert len(calls) == 2, "a wall-clock gate gets exactly one retry"
        captured = capsys.readouterr()
        assert "failed once; retrying" in captured.out
        # The second failure gets its own distinct line: past the noise
        # tolerance means a real regression, not runner jitter.
        assert "failed after retry" in captured.err
        assert "GATE FAILED: arena_fusion" in captured.err

    def test_deterministic_gate_never_retries(self, run_gates, monkeypatch,
                                              capsys):
        calls = self._failing_driver(run_gates, monkeypatch)
        assert run_gates.run_gates(["tenant_fairness"]) == 1
        assert len(calls) == 1, "deterministic gates fail fast"
        captured = capsys.readouterr()
        assert "retry" not in captured.out and "retry" not in captured.err
        assert "GATE FAILED: tenant_fairness" in captured.err

    def test_passing_gate_emits_no_failure_lines(self, run_gates,
                                                 monkeypatch, capsys):
        monkeypatch.setattr(run_gates, "_run", lambda argv: 0)
        assert run_gates.run_gates(["arena_fusion"]) == 0
        captured = capsys.readouterr()
        assert "FAILED" not in captured.err and "retry" not in captured.out
