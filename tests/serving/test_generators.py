"""Serving traces and request sources."""

from __future__ import annotations

import numpy as np
import pytest

from repro.elastic import ServingPhase, serving_arrival_times, spike_phases
from repro.serving import ClosedLoopSource, OpenLoopPoissonSource
from repro.serving.request import RequestRecord


class TestServingTrace:
    def test_arrivals_increase_and_stay_in_range(self):
        times = serving_arrival_times([ServingPhase(2.0, 100.0)], seed=0)
        assert np.all(np.diff(times) > 0)
        assert times[0] >= 0 and times[-1] < 2.0

    def test_rate_is_roughly_honored(self):
        times = serving_arrival_times([ServingPhase(10.0, 200.0)], seed=0)
        assert 10.0 * 200.0 * 0.9 < len(times) < 10.0 * 200.0 * 1.1

    def test_piecewise_rates(self):
        phases = spike_phases(100.0, spike_factor=4.0,
                              base_duration=2.0, spike_duration=2.0)
        times = serving_arrival_times(phases, seed=1)
        base = np.sum(times < 2.0)
        spike = np.sum((times >= 2.0) & (times < 4.0))
        assert spike > 2.5 * base  # ~4x, with Poisson slack

    def test_deterministic_in_seed(self):
        phases = [ServingPhase(1.0, 300.0)]
        a = serving_arrival_times(phases, seed=7)
        b = serving_arrival_times(phases, seed=7)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, serving_arrival_times(phases, seed=8))

    def test_limit_caps_arrivals(self):
        times = serving_arrival_times([ServingPhase(10.0, 500.0)], seed=0,
                                      limit=25)
        assert len(times) == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingPhase(0.0, 10.0)
        with pytest.raises(ValueError):
            ServingPhase(1.0, -1.0)
        with pytest.raises(ValueError):
            spike_phases(100.0, spike_factor=0.5)
        with pytest.raises(ValueError):
            serving_arrival_times([], seed=0)


class TestOpenLoopSource:
    def test_requests_cycle_example_bank(self):
        examples = np.arange(6, dtype=float).reshape(3, 2)
        source = OpenLoopPoissonSource([ServingPhase(1.0, 200.0)], examples,
                                       seed=0)
        got = source.take_arrivals(1.0)
        assert len(got) == source.total_requests
        assert [r.request_id for r in got] == list(range(len(got)))
        for r in got:
            np.testing.assert_array_equal(r.example,
                                          examples[r.request_id % 3])

    def test_take_respects_clock(self):
        examples = np.zeros((1, 2))
        source = OpenLoopPoissonSource([ServingPhase(2.0, 100.0)], examples,
                                       seed=0)
        first = source.next_arrival_time()
        got = source.take_arrivals(first)
        assert len(got) >= 1
        nxt = source.next_arrival_time()
        assert nxt is None or nxt > first

    def test_drained_source_reports_none(self):
        examples = np.zeros((1, 2))
        source = OpenLoopPoissonSource([ServingPhase(0.5, 50.0)], examples,
                                       seed=0)
        source.take_arrivals(10.0)
        assert source.next_arrival_time() is None


def _complete(requests, completion):
    return [
        RequestRecord(request_id=r.request_id, arrival_time=r.arrival_time,
                      dispatch_time=completion - 0.001,
                      completion_time=completion, batch_id=0,
                      batch_size=len(requests), devices=1, client=r.client)
        for r in requests
    ]


class TestClosedLoopSource:
    def test_one_outstanding_request_per_client(self):
        examples = np.zeros((4, 2))
        source = ClosedLoopSource(num_clients=3, requests_per_client=2,
                                  examples=examples, think_time=0.01, seed=0)
        first = source.take_arrivals(10.0)
        assert len(first) == 3  # one per client, nothing more until completion
        assert source.next_arrival_time() is None
        source.on_completion(_complete(first, completion=1.0))
        second = source.take_arrivals(100.0)
        assert len(second) == 3
        assert all(r.arrival_time >= 1.0 for r in second)

    def test_total_request_budget(self):
        examples = np.zeros((4, 2))
        source = ClosedLoopSource(num_clients=2, requests_per_client=3,
                                  examples=examples, think_time=0.0, seed=0)
        served = 0
        t = 0.0
        while source.next_arrival_time() is not None:
            t += 1.0
            batch = source.take_arrivals(t)
            served += len(batch)
            source.on_completion(_complete(batch, completion=t))
        assert served == 2 * 3

    def test_validation(self):
        examples = np.zeros((1, 2))
        with pytest.raises(ValueError):
            ClosedLoopSource(0, 1, examples)
        with pytest.raises(ValueError):
            ClosedLoopSource(1, 0, examples)
        with pytest.raises(ValueError):
            ClosedLoopSource(1, 1, examples, think_time=-1.0)
