"""Load-shedding admission control, brownout, and outage drain regression."""

from __future__ import annotations

import pytest

from repro.chaos import (
    ECCThrottle,
    FailureDomainTopology,
    FaultPlan,
    domain_wipe_events,
)
from repro.elastic import ServingPhase
from repro.hardware.perfmodel import ClusterConditions
from repro.sched import resident_training_jobs, run_cosched
from repro.serving import serve_workload
from repro.serving.batcher import AdmissionPolicy


def _serve(rate=300.0, duration=1.0, seed=0, **kwargs):
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait", 0.002)
    kwargs.setdefault("pool_devices", 4)
    return serve_workload("mlp_synthetic", [ServingPhase(duration, rate)],
                          seed=seed, **kwargs)


class TestAdmissionPolicy:
    def test_needs_at_least_one_mechanism(self):
        with pytest.raises(ValueError):
            AdmissionPolicy()
        AdmissionPolicy(max_queue_depth=8)
        AdmissionPolicy(max_estimated_wait=0.05)
        AdmissionPolicy(brownout=True)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_estimated_wait=0.0)


class TestShedding:
    def test_no_admission_policy_is_bit_identical(self):
        # Arming no policy must not perturb a single float.
        base = _serve()
        again = _serve(admission=None)
        assert [(r.request_id, r.completion_time) for r in base.records] \
            == [(r.request_id, r.completion_time) for r in again.records]
        assert base.shed == [] and again.shed == []

    def test_depth_threshold_sheds_overload(self):
        # The depth gate polices the router's coalescing queue, which the
        # admission pull loop itself caps at max_batch — so a tripping
        # threshold sits *below* max_batch.
        overloaded = _serve(rate=4000.0, pool_devices=1,
                            admission=AdmissionPolicy(max_queue_depth=4))
        assert overloaded.shed, "4000 rps on one device must trip depth"
        assert all(reason == "depth" for _, _, reason in overloaded.shed)
        assert 0.0 < overloaded.shed_rate() < 1.0
        # Shed requests never appear as completed records.
        shed_ids = {rid for _, rid, _ in overloaded.shed}
        assert shed_ids.isdisjoint({r.request_id for r in overloaded.records})
        # Offered = admitted + shed, and the summary agrees.
        summary = overloaded.summary()
        assert summary["offered"] == len(overloaded.records) + len(
            overloaded.shed)

    def test_shedding_bounds_queue_delay(self):
        shed = _serve(rate=4000.0, pool_devices=1,
                      admission=AdmissionPolicy(max_queue_depth=4))
        unshed = _serve(rate=4000.0, pool_devices=1)
        assert max(r.queue_delay for r in shed.records) \
            < max(r.queue_delay for r in unshed.records)

    def test_wait_threshold_needs_observed_service_time(self):
        # A cold router has no service estimate, so a wait-only policy can
        # never shed the very first arrivals — they must be admitted.
        report = _serve(rate=4000.0, pool_devices=1,
                        admission=AdmissionPolicy(max_estimated_wait=1e-6))
        assert report.records, "the cold start must admit something"
        assert report.shed, "after one completion the estimate trips"
        assert all(reason == "wait" for _, _, reason in report.shed)

    def test_shedding_is_deterministic(self):
        policy = AdmissionPolicy(max_queue_depth=16, max_estimated_wait=0.02)
        a = _serve(rate=2000.0, admission=policy)
        b = _serve(rate=2000.0, admission=policy)
        assert a.shed == b.shed
        assert [(r.request_id, r.completion_time) for r in a.records] \
            == [(r.request_id, r.completion_time) for r in b.records]


def _wipe_run(*, admission=None, initial_serving=2, seed=1):
    """Co-scheduled run whose rack wipe takes out the whole serving split."""
    topology = FailureDomainTopology.regular(3, 2)
    events = domain_wipe_events(topology, "rack", 0, 0.5, 1.2)
    plan = FaultPlan.from_events(events, topology=topology, min_healthy=1)
    return run_cosched(
        "mlp_synthetic", [ServingPhase(2.0, 300.0)],
        resident_training_jobs(2, demand_gpus=2),
        pool_devices=6, max_batch=8, max_wait=0.002,
        initial_serving=initial_serving, autoscale=False,
        resize_delay=0.25, seed=seed, fault_plan=plan,
        topology=topology, admission=admission)


class TestOutageDrain:
    """Regression: a static deployment losing *every* serving device parks
    arrivals, halts (no retry spin), and drains the backlog on revive."""

    def test_no_requests_lost_across_total_outage(self):
        clean = _wipe_run(seed=1)
        # Sanity: the wipe hit serving and the router requeued in-flight work.
        chaos = clean.chaos
        assert len(chaos["serving_failures"]) == 2
        ids = [r.request_id for r in clean.serving.records]
        assert sorted(ids) == list(range(len(ids))), (
            "requests were lost across the outage")
        for r in clean.serving.records:
            assert r.completion_time >= r.dispatch_time >= r.arrival_time

    def test_outage_window_is_silent_then_drains(self):
        report = _wipe_run(seed=1)
        wipe, repair = 0.5, 1.2
        # No batch completes inside the dark window (the router is halted,
        # not spinning on retries against zero devices).
        assert not any(wipe < b.completion_time < repair
                       for b in report.serving.batches)
        # Arrivals that landed during the outage drain after the repair.
        parked = [r for r in report.serving.records
                  if wipe <= r.arrival_time < repair]
        assert parked, "the trace must offer load during the outage"
        assert all(r.dispatch_time >= repair for r in parked)

    def test_static_router_regrows_to_pinned_size(self):
        report = _wipe_run(seed=1)
        assert report.serving.final_devices == 2

    def test_shedding_trims_the_post_outage_backlog(self):
        admitted = _wipe_run(seed=1)
        shed = _wipe_run(seed=1, admission=AdmissionPolicy(
            max_queue_depth=64, max_estimated_wait=0.02))
        assert shed.serving.shed, "the outage backlog must trip the wait gate"
        # Everything still admitted completes, and the worst queueing delay
        # strictly improves on the admit-everything run.
        ids = sorted(r.request_id for r in shed.serving.records)
        shed_ids = sorted(rid for _, rid, _ in shed.serving.shed)
        assert len(ids) + len(shed_ids) == len(admitted.serving.records)
        # The request that arrived the instant the rack died still pays the
        # full outage (it was admitted before any backlog was observable),
        # so the *max* delay matches — but the drain is far cheaper on
        # average because doomed arrivals were turned away at the door.
        def mean_delay(report):
            records = report.serving.records
            return sum(r.queue_delay for r in records) / len(records)

        assert mean_delay(shed) < 0.5 * mean_delay(admitted)


class TestBrownout:
    def test_brownout_halves_batches_under_derate(self):
        topology = FailureDomainTopology.regular(3, 2)
        # Derate serving device 0 for most of the trace; no crashes at all.
        plan = FaultPlan.from_events(
            ECCThrottle(speed=0.6, duration_s=1.0).events(0, 0.3),
            topology=topology)
        brown = run_cosched(
            "mlp_synthetic", [ServingPhase(1.5, 600.0)],
            resident_training_jobs(2, demand_gpus=2),
            pool_devices=6, max_batch=8, max_wait=0.002,
            initial_serving=2, autoscale=False, resize_delay=0.25,
            seed=1, fault_plan=plan, topology=topology,
            admission=AdmissionPolicy(brownout=True))
        assert brown.serving.brownout_batches > 0
        assert brown.chaos["derate_events"] == 2
        # Brownout batches respect the halved cap.
        derated = [b for b in brown.serving.batches
                   if 0.3 <= b.dispatch_time < 1.3]
        assert derated and max(b.size for b in derated) <= 4

    def test_policy_object_reused_when_not_derated(self):
        # The brownout check must return the identical policy object on a
        # clean lease — that identity is what keeps un-derated runs
        # bit-exact and is how brownout batches are counted.
        from repro.serving.batcher import MicroBatchPolicy
        from repro.serving.router import RequestRouter

        conditions = ClusterConditions()
        router = RequestRouter.__new__(RequestRouter)
        router.admission = AdmissionPolicy(brownout=True)
        router.policy = MicroBatchPolicy(max_batch=8, max_wait=0.002)

        class _Lease:
            device_ids = (0, 1)

        router._conditions = conditions
        router._lease = _Lease()
        assert router._policy_now() is router.policy
        conditions.set_derate(0, 0.5)
        halved = router._policy_now()
        assert halved is not router.policy
        assert halved.max_batch == 4 and halved.max_wait == 0.001
