"""The request router: batching invariants, bit-identity, elasticity."""

from __future__ import annotations

from collections import defaultdict

import numpy as np
import pytest

from repro.core import InferenceEngine, Mapping, TrainerConfig, VirtualFlowTrainer, VirtualNodeSet
from repro.data import make_dataset
from repro.elastic import ServingPhase, spike_phases
from repro.framework import get_workload
from repro.hardware import Cluster
from repro.serving import (
    ClosedLoopSource,
    MicroBatchPolicy,
    OpenLoopPoissonSource,
    RequestRouter,
    serve_workload,
)

SLO = 0.035


def _serve(rate=300.0, duration=1.0, seed=0, **kwargs):
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait", 0.002)
    kwargs.setdefault("pool_devices", 4)
    return serve_workload("mlp_synthetic", [ServingPhase(duration, rate)],
                          seed=seed, **kwargs)


def _example_bank(workload_name, seed):
    workload = get_workload(workload_name)
    return make_dataset(workload.dataset, n=512, seed=seed).x_val


class TestRouterInvariants:
    def test_every_request_served_exactly_once(self):
        report = _serve()
        ids = [r.request_id for r in report.records]
        assert sorted(ids) == list(range(len(ids)))

    def test_fcfs_dispatch_order(self):
        report = _serve()
        # Records accumulate in dispatch order; arrivals never go backwards
        # across batch boundaries (FCFS, no overtaking).
        arrivals = [r.arrival_time for r in report.records]
        batch_of = [r.batch_id for r in report.records]
        for i in range(1, len(arrivals)):
            if batch_of[i] != batch_of[i - 1]:
                continue
            assert arrivals[i] >= arrivals[i - 1]

    def test_latency_accounting(self):
        report = _serve()
        for r in report.records:
            assert r.dispatch_time >= r.arrival_time
            assert r.completion_time > r.dispatch_time
            assert r.latency == pytest.approx(r.queue_delay + r.service_time)

    def test_batch_size_respects_policy(self):
        report = _serve(rate=2000.0, max_batch=8)
        assert max(b.size for b in report.batches) <= 8
        # Overload coalesces: under heavy backlog batches actually fill.
        assert max(b.size for b in report.batches) == 8

    def test_max_wait_bounds_idle_queueing(self):
        # At a trickle rate the pipeline is idle, so the only queueing a
        # request can see is the coalescing wait itself.
        report = _serve(rate=20.0, duration=1.0, max_wait=0.003)
        for batch in report.batches:
            first = min(r.arrival_time for r in report.records
                        if r.batch_id == batch.batch_id)
            assert batch.dispatch_time <= first + 0.003 + 1e-12

    def test_batches_never_overlap(self):
        report = _serve(rate=1500.0)
        for prev, cur in zip(report.batches, report.batches[1:]):
            assert cur.dispatch_time >= prev.completion_time - 1e-12

    def test_summary_shape(self):
        report = _serve()
        summary = report.summary(slo_p99=SLO)
        for key in ("requests", "throughput_rps", "latency_p99_ms",
                    "avg_devices", "slo_attainment", "meets_slo"):
            assert key in summary
        assert summary["requests"] == len(report.records)

    def test_closed_loop_source_drives_router(self):
        workload = get_workload("mlp_synthetic")
        bank = _example_bank("mlp_synthetic", 0)
        source = ClosedLoopSource(num_clients=4, requests_per_client=5,
                                  examples=bank, think_time=0.002, seed=0)
        vn_set = VirtualNodeSet.even(4, 4)
        pool = Cluster.homogeneous("V100", 2)
        engine = InferenceEngine(workload, workload.build_model(0),
                                 Mapping.even(vn_set, pool))
        report = RequestRouter(engine, source,
                               MicroBatchPolicy(max_batch=4, max_wait=0.001)).run()
        assert len(report.records) == 4 * 5


class TestBitIdentity:
    """The acceptance bar: router micro-batches == one-shot engine batches."""

    @pytest.mark.parametrize("autoscale", [False, True])
    def test_served_logits_equal_one_shot_batches(self, autoscale):
        seed = 3
        kwargs = dict(autoscale=autoscale)
        if autoscale:
            kwargs["slo_p99"] = SLO
        report = _serve(rate=600.0, duration=0.8, seed=seed,
                        collect_logits=True, **kwargs)
        assert report.logits, "collect_logits must populate the report"

        workload = get_workload("mlp_synthetic")
        bank = _example_bank("mlp_synthetic", seed)
        # A fresh one-shot engine on a *different* mapping: predictions are
        # mapping-invariant, so this is the strictest form of the check.
        vn_set = VirtualNodeSet.even(4, 4)
        oneshot = InferenceEngine(
            workload, workload.build_model(seed),
            Mapping.even(vn_set, Cluster.homogeneous("V100", 1)))

        by_batch = defaultdict(list)
        for r in report.records:
            by_batch[r.batch_id].append(r)
        for records in by_batch.values():
            x = np.stack([bank[r.request_id % len(bank)] for r in records])
            expected = oneshot.predict(x).logits
            got = np.stack([report.logits[r.request_id] for r in records])
            np.testing.assert_array_equal(got, expected)

    def test_autoscaled_results_match_fixed_results(self):
        # Scaling policy changes *when* batches launch, so the two runs
        # coalesce different micro-batches; per-request results agree to
        # numerical noise (exactness holds per batch composition — the GEMM
        # batch dimension moves OpenBLAS's last-ulp rounding, the same
        # substrate property the fused backend's contract documents).
        fixed = _serve(rate=800.0, seed=1, collect_logits=True,
                       initial_devices=4)
        auto = _serve(rate=800.0, seed=1, collect_logits=True,
                      autoscale=True, slo_p99=SLO)
        assert set(fixed.logits) == set(auto.logits)
        for request_id, logits in fixed.logits.items():
            np.testing.assert_allclose(logits, auto.logits[request_id],
                                       rtol=1e-9, atol=1e-12)

    def test_fused_backend_serves_identical_logits(self):
        ref = _serve(rate=500.0, seed=2, collect_logits=True)
        fused = _serve(rate=500.0, seed=2, collect_logits=True,
                       backend="fused")
        for request_id, logits in ref.logits.items():
            np.testing.assert_array_equal(logits, fused.logits[request_id])


class TestStatefulServing:
    def test_trained_job_serves_under_merged_eval_state(self):
        # Train a BatchNorm model briefly, then serve it through the router:
        # the engine must evaluate under the canonical merged virtual-node
        # state, identically to the executor's own evaluation path.
        trainer = VirtualFlowTrainer(TrainerConfig(
            workload="resnet56_cifar10", global_batch_size=16,
            num_virtual_nodes=4, num_devices=2, dataset_size=64, seed=0))
        x = trainer.dataset.x_train[:16]
        y = trainer.dataset.y_train[:16]
        trainer.executor.run_step(x, y, epoch=0, step=0)
        executor = trainer.executor

        engine = InferenceEngine.from_executor(executor)
        batch = trainer.dataset.x_val[:8]
        served = engine.predict(batch).logits

        model = executor.model
        model.load_state_dict(executor._merged_eval_state())
        expected = model.forward(batch, training=False)
        np.testing.assert_array_equal(served, expected)

    def test_eval_state_cache_survives_remap(self):
        trainer = VirtualFlowTrainer(TrainerConfig(
            workload="resnet56_cifar10", global_batch_size=16,
            num_virtual_nodes=4, num_devices=2, dataset_size=64, seed=0))
        trainer.executor.run_step(trainer.dataset.x_train[:16],
                                  trainer.dataset.y_train[:16],
                                  epoch=0, step=0)
        engine = InferenceEngine.from_executor(trainer.executor)
        batch = trainer.dataset.x_val[:8]
        before = engine.predict(batch).logits
        engine.remap(Mapping.even(engine.mapping.vn_set,
                                  Cluster.homogeneous("P100", 1)))
        after = engine.predict(batch).logits
        np.testing.assert_array_equal(before, after)


class TestAutoscaledServing:
    def test_spike_triggers_scale_up_and_back_down(self):
        report = serve_workload(
            "mlp_synthetic", spike_phases(400.0, 6.0, 3.0, 1.0),
            max_batch=16, max_wait=0.002, pool_devices=8,
            autoscale=True, slo_p99=0.030, initial_devices=2, seed=1)
        assert report.scaling_events, "the spike must trigger a remap"
        peak = max(new for _, _, new, _ in report.scaling_events)
        assert peak > 2
        # After the spike the allocation comes back down.
        assert report.final_devices < peak

    def test_autoscaling_beats_fixed_small_mapping_on_tail(self):
        phases = spike_phases(400.0, 6.0, 3.0, 1.0)
        fixed = serve_workload("mlp_synthetic", phases, max_batch=16,
                               max_wait=0.002, pool_devices=8,
                               initial_devices=2, seed=1)
        auto = serve_workload("mlp_synthetic", phases, max_batch=16,
                              max_wait=0.002, pool_devices=8,
                              autoscale=True, slo_p99=0.030,
                              initial_devices=2, seed=1)
        assert auto.percentile(99) < fixed.percentile(99)

    def test_remap_cost_charged_for_joining_devices(self):
        report = serve_workload(
            "mlp_synthetic", spike_phases(400.0, 6.0, 3.0, 1.0),
            max_batch=16, max_wait=0.002, pool_devices=8,
            autoscale=True, slo_p99=0.030, initial_devices=2, seed=1)
        ups = [c for _, old, new, c in report.scaling_events if new > old]
        downs = [c for _, old, new, c in report.scaling_events if new < old]
        assert all(c > 0 for c in ups)     # §4.1 all-gather to joiners
        assert all(c == 0 for c in downs)  # shrinking is free

    def test_device_seconds_accounting(self):
        report = _serve(rate=300.0, initial_devices=2, pool_devices=2)
        assert report.avg_devices() == pytest.approx(2.0)


class TestEdgeCases:
    def test_non_ladder_initial_devices_autoscale(self):
        # 3 is not on the power-of-two ladder; overload from it must scale,
        # not crash (regression: KeyError in the breach-guard capacity
        # lookup).
        report = serve_workload(
            "mlp_synthetic", spike_phases(2000.0, 2.0, 1.0, 0.5),
            max_batch=16, max_wait=0.002, pool_devices=8,
            autoscale=True, slo_p99=0.005, initial_devices=3, seed=1)
        assert len(report.records) > 0
        assert any(new > 3 for _, _, new, _ in report.scaling_events)

    def test_empty_run_summary_does_not_crash(self):
        from repro.serving import ServingReport

        summary = ServingReport().summary(slo_p99=SLO)
        assert summary["requests"] == 0.0
        assert summary["meets_slo"] == 1.0  # vacuously

    def test_trace_with_no_arrivals(self):
        # A rate/duration combination that yields zero Poisson arrivals must
        # produce an empty, well-formed report end to end.
        report = _serve(rate=0.5, duration=0.2, seed=3)
        assert report.records == []
        assert report.summary(slo_p99=SLO)["requests"] == 0.0


class TestServeWorkloadValidation:
    def test_autoscale_requires_slo(self):
        with pytest.raises(ValueError):
            _serve(autoscale=True)

    def test_virtual_nodes_must_cover_pool(self):
        with pytest.raises(ValueError):
            _serve(virtual_nodes=2, pool_devices=4)

    def test_initial_devices_bounded_by_pool(self):
        with pytest.raises(ValueError):
            _serve(initial_devices=9, pool_devices=4)

    def test_router_requires_pool_for_autoscaling(self):
        workload = get_workload("mlp_synthetic")
        vn_set = VirtualNodeSet.even(4, 4)
        engine = InferenceEngine(workload, workload.build_model(0),
                                 Mapping.even(vn_set, Cluster.homogeneous("V100", 2)))
        source = OpenLoopPoissonSource([ServingPhase(0.1, 10.0)],
                                       _example_bank("mlp_synthetic", 0))
        from repro.serving import LatencyAutoscaler

        scaler = LatencyAutoscaler(SLO, {1: 100.0, 2: 200.0})
        with pytest.raises(ValueError):
            RequestRouter(engine, source, autoscaler=scaler)
