"""The micro-batching policy's pure arithmetic."""

from __future__ import annotations

import pytest

from repro.serving import MicroBatchPolicy


class TestValidation:
    def test_defaults(self):
        policy = MicroBatchPolicy()
        assert policy.max_batch >= 1
        assert policy.max_wait >= 0

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_batch": -3},
        {"max_wait": -0.001},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatchPolicy(**kwargs)


class TestTrigger:
    def test_full_batch_triggers_at_kth_arrival(self):
        policy = MicroBatchPolicy(max_batch=3, max_wait=1.0)
        assert policy.trigger_time([0.0, 0.1, 0.2, 0.3]) == 0.2

    def test_underfull_batch_triggers_at_deadline(self):
        policy = MicroBatchPolicy(max_batch=8, max_wait=0.05)
        assert policy.trigger_time([1.0, 1.01]) == pytest.approx(1.05)

    def test_deadline_tracks_oldest_request(self):
        policy = MicroBatchPolicy(max_batch=4, max_wait=0.02)
        assert policy.deadline(2.0) == pytest.approx(2.02)

    def test_zero_wait_launches_immediately(self):
        policy = MicroBatchPolicy(max_batch=8, max_wait=0.0)
        assert policy.trigger_time([5.0]) == 5.0

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError):
            MicroBatchPolicy().trigger_time([])
