"""Device-second accounting across rescale boundaries.

``ServingReport.device_seconds`` is the cost side of every SLO frontier, so
its accounting — now owned by :class:`~repro.runtime.pool.DevicePool` lease
accrual rather than hand-rolled router arithmetic — is audited here against
an independent reconstruction from the scaling-event timeline: each interval
must be charged at the allocation that actually held it, across scale-ups
landing while the pipeline is backed up and scale-downs landing at idle.
"""

from __future__ import annotations

import pytest

from repro.elastic import ServingPhase, spike_phases
from repro.serving import serve_workload

SLO = 0.030


def _integral_from_events(report, initial_devices: float) -> float:
    """Independent ∫ devices dt from the scaling timeline."""
    total, prev_t, devices = 0.0, 0.0, initial_devices
    for when, old, new, _cost in report.scaling_events:
        assert old == devices, "scaling events must chain contiguously"
        total += (when - prev_t) * devices
        prev_t, devices = when, new
    total += (report.duration - prev_t) * devices
    assert devices == report.final_devices
    return total


class TestRescaleBoundaries:
    def test_autoscaled_run_matches_event_integral(self):
        # A spiky run: scale-ups land while the queue is backed up
        # (mid-batch pressure), scale-downs land after the spike drains.
        report = serve_workload(
            "mlp_synthetic", spike_phases(400.0, 6.0, 3.0, 1.0),
            max_batch=16, max_wait=0.002, pool_devices=8,
            autoscale=True, slo_p99=SLO, initial_devices=2, seed=1)
        ups = [e for e in report.scaling_events if e[2] > e[1]]
        downs = [e for e in report.scaling_events if e[2] < e[1]]
        assert ups and downs, "the trace must exercise both boundaries"
        assert report.device_seconds == pytest.approx(
            _integral_from_events(report, 2), rel=1e-12)

    def test_scale_down_at_idle_charges_the_tail_interval(self):
        # After the spike the queue empties; the final allocation must be
        # charged through the end of the run (duration), not through the
        # last completion.
        report = serve_workload(
            "mlp_synthetic", spike_phases(400.0, 6.0, 3.0, 1.0),
            max_batch=16, max_wait=0.002, pool_devices=8,
            autoscale=True, slo_p99=SLO, initial_devices=2, seed=1)
        last_change = report.scaling_events[-1][0]
        tail = (report.duration - last_change) * report.final_devices
        assert tail > 0
        # Removing the tail must break the books: the interval is real.
        assert report.device_seconds - tail == pytest.approx(
            _integral_from_events(report, 2) - tail, rel=1e-12)

    def test_fixed_mapping_charges_the_whole_run(self):
        report = serve_workload(
            "mlp_synthetic", [ServingPhase(1.0, 300.0)],
            max_batch=8, max_wait=0.002, pool_devices=4,
            initial_devices=3, seed=0)
        assert not report.scaling_events
        assert report.device_seconds == pytest.approx(3 * report.duration)
        assert report.avg_devices() == pytest.approx(3.0)

    def test_empty_run_accrues_nothing(self):
        report = serve_workload(
            "mlp_synthetic", [ServingPhase(0.2, 0.5)],
            max_batch=8, max_wait=0.002, pool_devices=2, seed=3)
        if report.records:  # seed-dependent guard; the point is zero-arrival
            pytest.skip("trace produced arrivals under this seed")
        assert report.device_seconds == 0.0
        assert report.duration == 0.0
