"""Tenant contracts: spec validation, quota meters, and the registry."""

from __future__ import annotations

import pytest

from repro.elastic import ServingPhase
from repro.serving.tenancy import (
    SLO_CLASSES,
    TenantRegistry,
    TenantSpec,
    TokenBucket,
    split_phases,
)


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("t")
        assert spec.slo_class == "best_effort"
        assert spec.slo == SLO_CLASSES["best_effort"]
        assert spec.weight == 1.0
        assert spec.quota_rps is None and spec.bucket() is None
        assert not spec.premium

    def test_zero_weight_rejected_at_construction(self):
        # A zero-weight tenant would never be dispatched while any other
        # tenant is backlogged — the contract is rejected up front, not
        # discovered as starvation at runtime.
        with pytest.raises(ValueError, match="weight must be > 0"):
            TenantSpec("t", weight=0.0)
        with pytest.raises(ValueError, match="weight must be > 0"):
            TenantSpec("t", weight=-2.0)
        with pytest.raises(ValueError):
            TenantRegistry.from_spec("a:weight=0")

    @pytest.mark.parametrize("kwargs", [
        dict(tenant_id=""),
        dict(tenant_id="t", slo_class="platinum"),
        dict(tenant_id="t", quota_rps=0.0),
        dict(tenant_id="t", burst=4.0),            # burst needs a quota
        dict(tenant_id="t", quota_rps=100.0, burst=0.5),
        dict(tenant_id="t", slo_p99=0.0),
        dict(tenant_id="t", share=0.0),
    ])
    def test_bad_contracts_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec(**kwargs)

    def test_slo_override_beats_class_default(self):
        spec = TenantSpec("t", slo_class="premium", slo_p99=0.020)
        assert spec.premium and spec.slo == 0.020

    def test_default_burst_is_tenth_of_quota_with_floor(self):
        assert TenantSpec("t", quota_rps=500.0).bucket().burst == 50.0
        assert TenantSpec("t", quota_rps=5.0).bucket().burst == 1.0


class TestTokenBucket:
    def test_starts_full_and_exhausts(self):
        bucket = TokenBucket(rate_rps=10.0, burst=3.0)
        assert [bucket.take(0.0) for _ in range(4)] == [True] * 3 + [False]

    def test_continuous_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_rps=10.0, burst=3.0)
        for _ in range(3):
            bucket.take(0.0)
        assert not bucket.take(0.05)    # only 0.5 tokens back
        # the failed take above still refilled: 0.5 + 0.5 >= 1 at t=0.10
        assert bucket.take(0.10)
        assert bucket.take(100.0)       # long idle refills to burst, not more
        assert bucket.tokens == pytest.approx(2.0)

    def test_decisions_replay_bit_identically(self):
        arrivals = [i * 0.013 for i in range(200)]

        def run():
            bucket = TokenBucket(rate_rps=40.0, burst=4.0)
            return [bucket.take(t) for t in arrivals]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=0.0, burst=2.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=10.0, burst=0.5)


class TestTenantRegistry:
    def test_preserves_order_and_lookup(self):
        registry = TenantRegistry(
            [TenantSpec("b"), TenantSpec("a"), TenantSpec("c")])
        assert registry.tenant_ids == ["b", "a", "c"]
        assert "a" in registry and "zz" not in registry
        assert registry["a"].tenant_id == "a"
        with pytest.raises(KeyError):
            registry["zz"]
        with pytest.raises(KeyError):
            registry[None]

    def test_duplicates_and_empty_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TenantRegistry([TenantSpec("a"), TenantSpec("a")])
        with pytest.raises(ValueError, match="at least one"):
            TenantRegistry([])

    def test_shares_normalize(self):
        registry = TenantRegistry([TenantSpec("a", share=1.0),
                                   TenantSpec("b", share=3.0)])
        assert registry.shares() == {"a": 0.25, "b": 0.75}

    def test_from_spec_full_grammar(self):
        registry = TenantRegistry.from_spec(
            "prem:class=premium,weight=4,quota=300,burst=16,p99=25,share=1;"
            "batch:weight=1,share=2; spare")
        prem = registry["prem"]
        assert prem.premium and prem.weight == 4.0
        assert prem.quota_rps == 300.0 and prem.burst == 16.0
        assert prem.slo == pytest.approx(0.025)   # p99 is milliseconds
        assert registry["batch"].slo_class == "best_effort"
        assert registry["spare"].weight == 1.0
        assert registry.tenant_ids == ["prem", "batch", "spare"]

    @pytest.mark.parametrize("spec,fragment", [
        (":weight=1", "no name"),
        ("a:weight", "key=value"),
        ("a:speed=4", "unknown key"),
        ("a:weight=fast", "must be a number"),
        ("a:class=platinum", "unknown SLO class"),
        ("", "at least one"),
    ])
    def test_from_spec_bad_fragments(self, spec, fragment):
        with pytest.raises(ValueError, match=fragment):
            TenantRegistry.from_spec(spec)

    def test_journal_round_trip(self):
        # to_dict -> from_dict must preserve every field an audit needs.
        registry = TenantRegistry.from_spec(
            "prem:class=premium,weight=4,quota=300,p99=25;batch:share=2")
        rebuilt = TenantRegistry.from_dict(registry.to_dict())
        assert rebuilt.tenant_ids == registry.tenant_ids
        for tenant_id in registry.tenant_ids:
            a, b = registry[tenant_id], rebuilt[tenant_id]
            assert (a.slo, a.weight, a.quota_rps, a.share) == \
                (b.slo, b.weight, b.quota_rps, b.share)
            assert a.premium == b.premium

    def test_describe_names_every_tenant(self):
        registry = TenantRegistry.from_spec("prem:class=premium;batch")
        text = registry.describe()
        assert "prem" in text and "batch" in text and "unlimited" in text


class TestSplitPhases:
    def test_rates_split_by_normalized_share(self):
        registry = TenantRegistry([TenantSpec("a", share=1.0),
                                   TenantSpec("b", share=3.0)])
        phases = [ServingPhase(1.0, 400.0), ServingPhase(0.5, 800.0)]
        split = split_phases(phases, registry)
        assert [p.rate for p in split["a"]] == [100.0, 200.0]
        assert [p.rate for p in split["b"]] == [300.0, 600.0]
        assert all(p.duration == q.duration
                   for p, q in zip(split["a"], phases))
