"""The multi-tenant gateway: WFQ, quota-aware shedding, and the journal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_dataset
from repro.elastic import ServingPhase
from repro.framework.models import get_workload
from repro.runtime import read_trace
from repro.serving import (
    MultiTenantPoissonSource,
    OpenLoopPoissonSource,
    TenantRegistry,
    TenantTaggingSource,
    audit_journal,
    serve_workload,
)
from repro.serving.batcher import AdmissionPolicy, WFQDispatchQueue
from repro.serving.request import Request
from repro.serving.tenancy import split_phases

FLOOD_SPEC = ("prem:class=premium,weight=8,quota=300,share=250;"
              "flood:class=best_effort,weight=1,share=4000")


def _serve(spec=FLOOD_SPEC, rate=4250.0, duration=1.0, seed=7, **kwargs):
    kwargs.setdefault("max_batch", 8)
    kwargs.setdefault("max_wait", 0.002)
    kwargs.setdefault("pool_devices", 1)
    return serve_workload(
        "mlp_synthetic", [ServingPhase(duration, rate)], seed=seed,
        tenants=TenantRegistry.from_spec(spec), **kwargs)


def _request(request_id, arrival, tenant):
    return Request(request_id=request_id, arrival_time=arrival,
                   example=np.zeros(4), tenant=tenant)


class TestWFQDispatchQueue:
    def test_weighted_order_jumps_the_backlog(self):
        registry = TenantRegistry.from_spec(
            "prem:class=premium,weight=8;flood:weight=1")
        queue = WFQDispatchQueue(registry)
        for i in range(20):
            queue.push(_request(i, 0.01 * i, "flood"))
        queue.push(_request(100, 0.25, "prem"))
        queue.push(_request(101, 0.26, "prem"))
        batch = queue.take(1.0, 4)
        # Both premium requests beat the 20-deep flood backlog.
        assert [r.request_id for r in batch] == [100, 101, 0, 1]

    def test_single_tenant_is_arrival_order(self):
        registry = TenantRegistry.from_spec("only:weight=3")
        queue = WFQDispatchQueue(registry)
        for i in range(10):
            queue.push(_request(i, 0.001 * i, "only"))
        assert [r.request_id for r in queue.take(1.0, 10)] == list(range(10))

    def test_not_yet_arrived_requests_stay_queued(self):
        registry = TenantRegistry.from_spec("a:weight=1")
        queue = WFQDispatchQueue(registry)
        queue.push(_request(0, 0.0, "a"))
        queue.push(_request(1, 5.0, "a"))
        assert [r.request_id for r in queue.take(1.0, 8)] == [0]
        assert len(queue) == 1
        assert queue.oldest_arrival() == 5.0


class TestTenantAwareShedding:
    def test_premium_within_quota_never_shed_under_flood(self):
        report = _serve(admission=AdmissionPolicy(max_queue_depth=64,
                                                  max_estimated_wait=None))
        shed_tenants = {tenant for _, _, tenant, _ in report.tenant_shed}
        assert report.tenant_shed, "the flood must trip the depth cap"
        assert shed_tenants == {"flood"}, (
            "only the best-effort tenant may pay for the overload")
        assert report.tenants["prem"]["shed"] == 0

    def test_quota_exhausted_premium_queues_when_not_overloaded(self):
        # Premium offers 200 req/s against a 50 req/s quota, but the pool
        # is nowhere near saturation: over-quota premium loses its shed
        # *immunity*, not its seat — every request still queues and serves.
        report = _serve(
            spec="prem:class=premium,weight=4,quota=50,share=1",
            rate=200.0, pool_devices=2,
            admission=AdmissionPolicy(max_queue_depth=64,
                                      max_estimated_wait=None))
        assert report.tenant_shed == []
        assert report.tenants["prem"]["shed"] == 0
        assert report.tenants["prem"]["requests"] == len(report.records) > 0

    def test_quota_exhausted_premium_sheds_under_overload(self):
        # The same over-quota premium tenant under a genuine overload faces
        # the thresholds like anyone else — the quota bounds the immunity.
        report = _serve(
            spec="prem:class=premium,weight=4,quota=50,share=1",
            rate=8000.0, pool_devices=1,
            admission=AdmissionPolicy(max_queue_depth=32,
                                      max_estimated_wait=None))
        assert report.tenants["prem"]["shed"] > 0

    def test_eager_admission_fills_past_the_batch_window(self):
        # The plain router's lazy pull stops at max_batch, so a depth cap
        # above the batch size could never trip; the gateway admits the
        # whole backlog eagerly, so it can and does.
        report = _serve(admission=AdmissionPolicy(max_queue_depth=32,
                                                  max_estimated_wait=None))
        assert report.tenant_shed
        assert {reason for _, _, _, reason in report.tenant_shed} == {"depth"}


class TestDispatcherWiring:
    def test_unknown_dispatcher_rejected(self):
        with pytest.raises(ValueError, match="dispatcher"):
            _serve(dispatcher="lifo", duration=0.1)

    def test_journal_needs_a_registry(self):
        with pytest.raises(ValueError, match="tenant registry"):
            serve_workload("mlp_synthetic", [ServingPhase(0.1, 100.0)],
                           journal="nope.jsonl")

    def test_fifo_dispatcher_serves_in_arrival_order(self):
        fifo = _serve(rate=600.0, admission=None, dispatcher="fifo")
        ids = [r.request_id for r in fifo.records]
        assert ids == sorted(ids), "fifo must dispatch in arrival order"
        # ... and the wfq knob actually changes the queue: with two tenants
        # backlogged it interleaves by weight, breaking arrival order.
        wfq = _serve(rate=600.0, admission=None)
        wfq_ids = [r.request_id for r in wfq.records]
        assert sorted(wfq_ids) == sorted(ids)   # same requests served
        assert wfq_ids != ids


class TestJournal:
    def test_audit_reproduces_live_report_exactly(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        report = _serve(journal=path,
                        admission=AdmissionPolicy(max_queue_depth=64,
                                                  max_estimated_wait=None))
        audit = audit_journal(path)
        assert audit["tenants"] == report.tenants   # bit-identical floats
        assert audit["dispatcher"] == "wfq"
        assert audit["requests"] == len(report.records)
        assert audit["shed"] == len(report.shed)

    def test_registry_header_is_first_line(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        _serve(duration=0.2, journal=path)
        events = read_trace(path)
        assert events[0]["kind"] == "registry"
        assert set(events[0]["data"]["tenants"]) == {"prem", "flood"}
        assert events[-1]["kind"] == "summary"

    def test_non_journal_trace_rejected_by_audit(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        serve_workload("mlp_synthetic", [ServingPhase(0.2, 100.0)],
                       pool_devices=1, trace=path)
        with pytest.raises(ValueError, match="registry"):
            audit_journal(path)

    def test_journal_survives_a_mid_run_crash(self, tmp_path):
        # The source dies mid-trace; the journal's finally-close must still
        # land every completed request on disk, auditable.
        class DyingSource(TenantTaggingSource):
            def take_arrivals(self, until):
                if until > 0.5:
                    raise RuntimeError("injected source failure")
                return super().take_arrivals(until)

        workload = get_workload("mlp_synthetic")
        dataset = make_dataset(workload.dataset, n=512, seed=0)
        source = DyingSource(
            OpenLoopPoissonSource([ServingPhase(2.0, 300.0)], dataset.x_val,
                                  seed=0), "only")
        path = str(tmp_path / "journal.jsonl")
        with pytest.raises(RuntimeError, match="injected"):
            serve_workload(
                "mlp_synthetic", [ServingPhase(2.0, 300.0)], pool_devices=2,
                source=source, seed=0, journal=path,
                tenants=TenantRegistry.from_spec("only:class=premium"))
        audit = audit_journal(path)
        assert audit["requests"] > 0
        assert audit["tenants"]["only"]["requests"] == audit["requests"]


class TestMultiTenantPoissonSource:
    def _source(self, spec, rate, seed=7, limit=None):
        registry = TenantRegistry.from_spec(spec)
        workload = get_workload("mlp_synthetic")
        dataset = make_dataset(workload.dataset, n=64, seed=seed)
        phases = [ServingPhase(1.0, rate)]
        return MultiTenantPoissonSource(
            registry, split_phases(phases, registry), dataset.x_val,
            seed=seed, limit=limit)

    def test_merged_stream_is_time_sorted_with_global_ids(self):
        source = self._source("a:share=1;b:share=2", 600.0)
        requests = source.take_arrivals(float("inf"))
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert [r.request_id for r in requests] == list(range(len(requests)))
        assert {r.tenant for r in requests} == {"a", "b"}

    def test_tenant_stream_independent_of_neighbours_rate(self):
        # prem's arrivals must be identical whether the other tenant offers
        # 1000 or 4000 req/s — per-tenant seed domains, not one shared draw.
        low = self._source("prem:share=250;flood:share=1000", 1250.0)
        high = self._source("prem:share=250;flood:share=4000", 4250.0)
        prem_low = [r.arrival_time for r in low.take_arrivals(float("inf"))
                    if r.tenant == "prem"]
        prem_high = [r.arrival_time for r in high.take_arrivals(float("inf"))
                     if r.tenant == "prem"]
        assert prem_low == prem_high

    def test_limit_caps_the_merged_total(self):
        source = self._source("a:share=1;b:share=1", 800.0, limit=37)
        assert source.total_requests == 37
        assert len(source.take_arrivals(float("inf"))) == 37

    def test_missing_phase_trace_rejected(self):
        registry = TenantRegistry.from_spec("a;b")
        workload = get_workload("mlp_synthetic")
        dataset = make_dataset(workload.dataset, n=64, seed=0)
        with pytest.raises(ValueError, match="no phase trace"):
            MultiTenantPoissonSource(
                registry, {"a": [ServingPhase(1.0, 100.0)]}, dataset.x_val)

    def test_wave_drain_matches_per_request_drain(self):
        # Two identical sources, one drained through take_wave and one
        # through take_arrivals at the same staggered cutoffs, must yield
        # the same requests — ids, times, tenants, and payload rows.
        spec = "prem:share=250;flood:share=1000"
        waves = self._source(spec, 1250.0)
        oracle = self._source(spec, 1250.0)
        for until in (0.1, 0.25, 0.25, 0.6, float("inf")):
            wave = waves.take_wave(until)
            got = ([] if wave is None else
                   [wave.build_request(j, t)
                    for j, t in enumerate(wave.times.tolist())])
            want = oracle.take_arrivals(until)
            assert [(r.request_id, r.arrival_time, r.tenant) for r in got] \
                == [(r.request_id, r.arrival_time, r.tenant) for r in want]
            for g, w in zip(got, want):
                assert np.array_equal(g.example, w.example)
            assert waves.next_arrival_time() == oracle.next_arrival_time()


class TestMultiTenantWaveEdgeCases:
    """The merged wave protocol's corners: coincident cross-tenant
    arrivals, tenants whose phases produce nothing, and a wave cut exactly
    at ``until``.  Per-tenant streams are pinned by stubbing the arrival
    sampler, so the merge logic is tested against known timestamps."""

    def _source(self, monkeypatch, streams, spec="a;b"):
        import repro.serving.gateway as gateway_module
        per_tenant = iter(streams)  # consumed in registry order

        def fixed_times(phases, seed=0, limit=None):
            return np.asarray(next(per_tenant), dtype=float)

        monkeypatch.setattr(gateway_module, "serving_arrival_times",
                            fixed_times)
        registry = TenantRegistry.from_spec(spec)
        workload = get_workload("mlp_synthetic")
        dataset = make_dataset(workload.dataset, n=64, seed=0)
        phases = {t: [ServingPhase(1.0, 1.0)] for t in registry.tenant_ids}
        return MultiTenantPoissonSource(registry, phases, dataset.x_val)

    def test_simultaneous_cross_tenant_arrivals_keep_registry_order(
            self, monkeypatch):
        source = self._source(monkeypatch, [[0.1, 0.5], [0.1, 0.3, 0.5]])
        wave = source.take_wave(float("inf"))
        merged = [(wave.times[j], wave.tenant_of(j)) for j in range(len(wave))]
        # Ties at 0.1 and 0.5 break in registry order: a before b.
        assert merged == [(0.1, "a"), (0.1, "b"), (0.3, "b"),
                          (0.5, "a"), (0.5, "b")]
        assert wave.first_id == 0
        requests = [wave.build_request(j, float(wave.times[j]))
                    for j in range(len(wave))]
        assert [r.request_id for r in requests] == list(range(5))

    def test_empty_phase_tenant_contributes_nothing(self, monkeypatch):
        source = self._source(monkeypatch, [[], [0.1, 0.2, 0.3]])
        assert source.total_requests == 3
        wave = source.take_wave(float("inf"))
        assert [wave.tenant_of(j) for j in range(len(wave))] == ["b"] * 3
        assert source.take_wave(float("inf")) is None

    def test_wave_straddling_until_exactly(self, monkeypatch):
        streams = [[0.1, 0.2], [0.2, 0.4]]
        source = self._source(monkeypatch, streams)
        # An arrival at exactly ``until`` belongs to this wave, not the next.
        wave = source.take_wave(0.2)
        assert wave.times.tolist() == [0.1, 0.2, 0.2]
        assert [wave.tenant_of(j) for j in range(3)] == ["a", "a", "b"]
        assert source.next_arrival_time() == 0.4
        tail = source.take_wave(0.4)
        assert tail.times.tolist() == [0.4]
        assert tail.first_id == 3
        assert source.take_wave(float("inf")) is None
        # The per-request pull cuts the identical boundary.
        oracle = self._source(monkeypatch, streams)
        head = oracle.take_arrivals(0.2)
        assert [(r.arrival_time, r.tenant) for r in head] \
            == [(0.1, "a"), (0.2, "a"), (0.2, "b")]


class TestIncrementalTenantAccounting:
    def test_tenant_report_not_rebuilt_during_live_run(self, monkeypatch):
        # The live gateway keeps per-tenant accounting incrementally;
        # tenant_report (the full rebuild) is reserved for the offline
        # audit and must run at most once per serving run.
        import repro.serving.gateway as gateway_module
        rebuild = gateway_module.tenant_report
        calls = {"n": 0}

        def counting(*args, **kwargs):
            calls["n"] += 1
            return rebuild(*args, **kwargs)

        monkeypatch.setattr(gateway_module, "tenant_report", counting)
        report = _serve(admission=AdmissionPolicy(max_queue_depth=64,
                                                  max_estimated_wait=None))
        assert calls["n"] <= 1, (
            f"tenant_report rebuilt {calls['n']} times during one run")
        # ... and the incremental digests match a from-scratch rebuild
        # bit for bit.
        assert rebuild(
            TenantRegistry.from_spec(FLOOD_SPEC),
            [(r.tenant, r.latency) for r in report.records],
            [tenant for _, _, tenant, _ in report.tenant_shed],
        ) == report.tenants
