"""The latency autoscaler's decision rules, on synthetic observations."""

from __future__ import annotations

import pytest

from repro.serving import LatencyAutoscaler
from repro.serving.autoscaler import AllocationProfile
from repro.serving.request import RequestRecord

CAPACITY = {1: 500.0, 2: 1000.0, 4: 2000.0, 8: 4000.0}


def _records(start_id, arrivals, latency, batch_id=0, devices=1):
    """Fabricate one completed micro-batch's records."""
    completion = arrivals[-1] + latency
    return [
        RequestRecord(request_id=start_id + i, arrival_time=t,
                      dispatch_time=completion - latency,
                      completion_time=completion, batch_id=batch_id,
                      batch_size=len(arrivals), devices=devices)
        for i, t in enumerate(arrivals)
    ]


def _drive(scaler, rate, latency, devices, batches=40, batch_size=16,
           start_t=0.0):
    """Feed steady Poisson-like load; return the first proposed target."""
    t = start_t
    rid = 0
    gap = batch_size / rate
    for b in range(batches):
        arrivals = [t + i / rate for i in range(batch_size)]
        t += gap
        target = scaler.observe(_records(rid, arrivals, latency, b, devices),
                                now=t, devices=devices)
        rid += batch_size
        if target is not None:
            return target
    return None


class TestScaleUp:
    def test_rate_above_capacity_scales_up(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY)
        # 1500 req/s cannot fit 2 devices (cap 1000): feedforward to 4.
        assert _drive(scaler, rate=1500.0, latency=0.005, devices=2) == 4

    def test_big_burst_jumps_multiple_steps(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY)
        # 3500 req/s on 1 device jumps straight to 8, not to 2.
        assert _drive(scaler, rate=3500.0, latency=0.005, devices=1) == 8

    def test_tail_breach_near_capacity_escalates(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY)
        # Rate fits 4 devices on paper, but the observed tail breached.
        assert _drive(scaler, rate=1200.0, latency=0.040, devices=4) == 8

    def test_overprovisioned_breach_is_ignored(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY)
        # High latencies while the rate is far below capacity: backlog
        # draining after a remap, not a capacity problem.
        assert _drive(scaler, rate=100.0, latency=0.040, devices=8) is None

    def test_steady_fit_load_is_left_alone(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY)
        assert _drive(scaler, rate=1200.0, latency=0.005, devices=4) is None


class TestScaleDown:
    def test_idle_allocation_sheds_devices(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY, cooldown=0.0)
        target = _drive(scaler, rate=300.0, latency=0.004, devices=8,
                        batch_size=2)
        assert target is not None and target < 8

    def test_cooldown_defers_scale_down(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY, cooldown=1e9)
        scaler._last_action = 0.0
        assert _drive(scaler, rate=300.0, latency=0.004, devices=8,
                      batch_size=2) is None

    def test_unhealthy_tail_blocks_scale_down(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY, cooldown=0.0)
        # Rate would fit fewer devices but p99 is not comfortably low.
        assert _drive(scaler, rate=300.0, latency=0.020, devices=8,
                      batch_size=2) is None

    def test_burst_latency_floor_blocks_marginal_allocation(self):
        profiles = {
            1: AllocationProfile(1, 500.0, 0.020),   # burst ~20ms: too hot
            2: AllocationProfile(2, 1000.0, 0.008),
            4: AllocationProfile(4, 2000.0, 0.004),
        }
        scaler = LatencyAutoscaler(0.030, profiles, cooldown=0.0)
        target = _drive(scaler, rate=100.0, latency=0.004, devices=4,
                        batch_size=1, batches=80)
        # 100 req/s fits 1 device by rate, but its full-batch latency cannot
        # hold the tail: 2 is the smallest safe allocation.
        assert target == 2


class TestDebounce:
    def test_single_excursion_does_not_act(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY, persistence=3)
        # Warm up within capacity at 2 devices.
        assert _drive(scaler, rate=600.0, latency=0.004, devices=2,
                      batches=15, batch_size=4) is None
        # One burst batch (high instantaneous rate), then calm again.
        burst = [10.0 + i / 5000.0 for i in range(16)]
        assert scaler.observe(_records(0, burst, 0.004, 90, 2),
                              now=10.2, devices=2) is None

    def test_persistent_breach_acts(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY, persistence=3)
        target = _drive(scaler, rate=1500.0, latency=0.004, devices=2)
        assert target == 4


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"slo_p99": 0.0},
        {"capacity": {}},
        {"min_devices": 0},
        {"min_devices": 9, "max_devices": 8},
        {"headroom": 0.5, "down_headroom": 0.6},
        {"persistence": 0},
        {"burst_window": 1},
        {"rate_window": 4, "burst_window": 48},
        {"scale_down_margin": 1.5},
        {"min_samples": 0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        defaults = dict(slo_p99=0.030, capacity=CAPACITY)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            LatencyAutoscaler(**defaults)

    def test_candidates_respect_bounds(self):
        scaler = LatencyAutoscaler(0.030, CAPACITY, min_devices=2,
                                   max_devices=4)
        assert scaler.candidates == [2, 4]
