"""Golden-trace regression harness for the shared discrete-event runtime.

The fixtures under ``tests/golden/*.json`` were captured from the
pre-refactor ``ClusterSimulator`` / ``RequestRouter`` loops (see
``capture_golden.py``).  These tests assert the runtime-based
implementations reproduce them **exactly** — every float bit-identical,
every event in the same order — and that repeated runs are deterministic
under fixed seeds.  A mismatch here means the refactor changed observable
scheduling behavior, not just its internals.
"""

from __future__ import annotations

import json
import os

import pytest

from capture_golden import capture, serving_to_dict, sim_to_dict  # noqa: F401

HERE = os.path.dirname(os.path.abspath(__file__))

FIXTURES = (
    "sim_three_job_wfs",
    "sim_three_job_static",
    "sim_trace20_wfs",
    "serve_fixed",
    "serve_autoscaled",
    "serve_tenants_wfq",
    "serve_shed_brownout_wave",
    "cosched_chaos_crash_recover",
    "cosched_domain_wipe_recover",
)


def _load(name: str) -> dict:
    with open(os.path.join(HERE, f"{name}.json")) as fh:
        return json.load(fh)


@pytest.fixture(scope="module", params=[
    ("heap", "wave"),
    ("calendar", "wave"),
    ("heap", "per_request"),
    ("calendar", "per_request"),
], ids=lambda p: f"{p[0]}-{p[1]}")
def current(request) -> dict:
    """One capture of every fixture scenario per backend × admission mode.

    Running the whole suite under both event-queue schedulers *and* both
    admission paths is the strongest equivalence statement the repo makes:
    the calendar queue must fire the exact event order the reference heap
    does, and the batched wave admission must make the exact decisions the
    per-request reference oracle does — down to the last float.
    """
    from repro.runtime import get_default_backend, set_default_backend
    from repro.serving.router import (
        get_default_admission_mode,
        set_default_admission_mode,
    )

    backend, mode = request.param
    prev = get_default_backend()
    prev_mode = get_default_admission_mode()
    set_default_backend(backend)
    set_default_admission_mode(mode)
    try:
        return {"backend": backend, **capture()}
    finally:
        set_default_backend(prev)
        set_default_admission_mode(prev_mode)


@pytest.mark.parametrize("name", FIXTURES)
def test_matches_pre_refactor_golden(name, current):
    golden = _load(name)
    got = json.loads(json.dumps(current[name]))  # normalize tuples/keys
    assert got == golden, (
        f"{name}: runtime-based implementation (queue backend "
        f"{current['backend']!r}) diverged from the pre-refactor golden "
        f"fixture")


def test_simulation_event_order_deterministic():
    """Two runs of the same seed produce byte-identical results."""
    from repro.elastic import ClusterSimulator, ElasticWFSScheduler, generate_trace

    trace = generate_trace(12, 12, seed=7)
    a = sim_to_dict(ClusterSimulator(6, ElasticWFSScheduler()).run(trace))
    trace = generate_trace(12, 12, seed=7)
    b = sim_to_dict(ClusterSimulator(6, ElasticWFSScheduler()).run(trace))
    assert a == b


def test_serving_event_order_deterministic():
    from repro.elastic import spike_phases
    from repro.serving import serve_workload

    def run():
        return serving_to_dict(serve_workload(
            "mlp_synthetic", spike_phases(300.0, 4.0, 1.0, 0.5),
            max_batch=8, max_wait=0.002, pool_devices=4,
            autoscale=True, slo_p99=0.030, initial_devices=1, seed=4))

    assert run() == run()


def _single_tenant_gateway_dict(phases, *, seed, **kwargs):
    """A WFQ gateway run whose one tenant wraps the plain Poisson source."""
    from repro.data import make_dataset
    from repro.framework.models import get_workload
    from repro.serving import (
        OpenLoopPoissonSource,
        TenantRegistry,
        TenantSpec,
        TenantTaggingSource,
        serve_workload,
    )

    workload = get_workload("mlp_synthetic")
    dataset = make_dataset(workload.dataset, n=512, seed=seed)
    source = TenantTaggingSource(
        OpenLoopPoissonSource(phases, dataset.x_val, seed=seed), "only")
    registry = TenantRegistry([TenantSpec("only", slo_class="premium")])
    report = serve_workload(
        "mlp_synthetic", phases, seed=seed, source=source, tenants=registry,
        **kwargs)
    got = json.loads(json.dumps(serving_to_dict(report)))
    # Strip the gateway's additive tenant bookkeeping; everything that
    # remains must be bit-identical to the plain-router fixture.
    got.pop("tenants")
    for record in got["records"]:
        assert record.pop("tenant") == "only"
    return got


def _fixed_phases():
    from repro.elastic import ServingPhase
    return [ServingPhase(1.0, 300.0)]


def _spiky_phases():
    from repro.elastic import spike_phases
    return spike_phases(400.0, 6.0, 3.0, 1.0)


@pytest.mark.parametrize("name,phases,kwargs", [
    ("serve_fixed", _fixed_phases,
     dict(max_batch=8, max_wait=0.002, pool_devices=4, seed=0)),
    ("serve_autoscaled", _spiky_phases,
     dict(max_batch=16, pool_devices=8, autoscale=True, slo_p99=0.030,
          initial_devices=2, seed=1)),
])
def test_single_tenant_wfq_matches_fifo_golden(name, phases, kwargs):
    """One tenant through the WFQ gateway == the pre-tenancy FIFO router.

    The tentpole's bit-identity clause: with a single tenant the WFQ
    dispatcher's finish tags are monotone in arrival order, so the gateway
    reproduces the committed pre-PR golden fixtures byte for byte — fixed
    mapping and the autoscaled spike both.
    """
    got = _single_tenant_gateway_dict(phases(), **kwargs)
    assert got == _load(name), (
        f"{name}: single-tenant WFQ gateway diverged from the FIFO golden")
