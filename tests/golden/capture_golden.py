"""Capture golden-trace fixtures for the discrete-event runtime refactor.

The runtime refactor (shared ``repro.runtime`` event loop under both the
elastic simulator and the serving router) carries a hard acceptance bar: the
refactored implementations must be **bit-identical** to the pre-refactor
loops on the seed traces.  This script serializes the observable outputs of
:class:`~repro.elastic.simulator.ClusterSimulator` and
:class:`~repro.serving.router.RequestRouter` — every float exactly as
computed, via JSON's shortest-round-trip repr — into ``tests/golden/*.json``.

The committed fixtures were captured from the pre-refactor implementations
(commit 4c4052e).  Re-running the script regenerates them from whatever the
current implementation produces::

    PYTHONPATH=src python tests/golden/capture_golden.py

so regenerate only when an *intentional* behavior change makes the old
fixtures obsolete, and say so in the commit message.
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

from repro.elastic import (  # noqa: E402
    ClusterSimulator,
    ElasticWFSScheduler,
    ServingPhase,
    StaticPriorityScheduler,
    generate_trace,
    spike_phases,
    three_job_trace,
)
from repro.chaos import (  # noqa: E402
    CRASH,
    ECCThrottle,
    FailureDomainTopology,
    NETWORK_END,
    NETWORK_START,
    REVIVE,
    STRAGGLER_END,
    STRAGGLER_START,
    ChaosEvent,
    FaultPlan,
    domain_wipe_events,
)
from repro.sched import resident_training_jobs, run_cosched  # noqa: E402
from repro.serving import serve_workload  # noqa: E402
from repro.serving.batcher import AdmissionPolicy  # noqa: E402


def sim_to_dict(result) -> dict:
    """Every observable field of a SimulationResult, floats untouched."""
    return {
        "scheduler_name": result.scheduler_name,
        "total_gpus": result.total_gpus,
        "makespan": result.makespan,
        "utilization": result.utilization(),
        "allocation_history": [
            [t, {str(k): v for k, v in alloc.items()}]
            for t, alloc in result.allocation_history
        ],
        "jobs": {
            str(job_id): {
                "status": state.status.value,
                "gpus": state.gpus,
                "steps_done": state.steps_done,
                "first_alloc_time": state.first_alloc_time,
                "finish_time": state.finish_time,
                "allocation_log": [[t, g] for t, g in state.allocation_log],
                "resizes": state.resizes,
            }
            for job_id, state in result.jobs.items()
        },
    }


def serving_to_dict(report) -> dict:
    """Every observable field of a ServingReport (logits excluded)."""
    out = {
        "duration": report.duration,
        "device_seconds": report.device_seconds,
        "final_devices": report.final_devices,
        "records": [
            {
                "request_id": r.request_id,
                "arrival_time": r.arrival_time,
                "dispatch_time": r.dispatch_time,
                "completion_time": r.completion_time,
                "batch_id": r.batch_id,
                "batch_size": r.batch_size,
                "devices": r.devices,
                "client": r.client,
            }
            for r in report.records
        ],
        "batches": [
            {
                "batch_id": b.batch_id,
                "dispatch_time": b.dispatch_time,
                "completion_time": b.completion_time,
                "size": b.size,
                "devices": b.devices,
                "waves": b.waves,
            }
            for b in report.batches
        ],
        "scaling_events": [list(e) for e in report.scaling_events],
    }
    # Admission-control and tenancy fields are opt-in: the keys appear only
    # when the scenario actually shed, browned out, or ran through the
    # multi-tenant gateway, so the pre-admission and pre-tenancy fixtures
    # stay byte-identical without regeneration.
    if report.shed:
        out["shed"] = [list(s) for s in report.shed]
    if report.brownout_batches:
        out["brownout_batches"] = report.brownout_batches
    if any(r.tenant is not None for r in report.records):
        for entry, r in zip(out["records"], report.records):
            entry["tenant"] = r.tenant
    if report.tenants:
        out["tenants"] = report.tenants
    if report.tenant_shed:
        out["tenant_shed"] = [list(s) for s in report.tenant_shed]
    return out


def cosched_to_dict(report) -> dict:
    """Every observable field of a CoschedReport, floats untouched."""
    return {
        "serving": serving_to_dict(report.serving),
        "duration": report.duration,
        "pool_devices": report.pool_devices,
        "harvests": [list(h) for h in report.harvests],
        "train_device_seconds": {
            str(k): v for k, v in sorted(report.train_device_seconds.items())},
        "jobs": {
            str(job_id): {
                "status": state.status.value,
                "gpus": state.gpus,
                "steps_done": state.steps_done,
                "allocation_log": [[t, g] for t, g in state.allocation_log],
                "resizes": state.resizes,
            }
            for job_id, state in report.jobs.items()
        },
        "chaos": report.chaos,
    }


def chaos_crash_recover() -> dict:
    """A small hand-written crash/recover scenario on a co-scheduled pool.

    Covers every chaos event kind exactly once per side: a training-held
    device crashes and revives (migration recovery), the serving device
    crashes and revives (requeue + re-admission), one straggler window
    derates a training device, and one network window stretches collective
    costs.  Pinned as a golden fixture so the recovery timeline — stalls,
    budget repairs, requeues — stays bit-identical under both backends.
    """
    plan = FaultPlan.from_events([
        ChaosEvent(0.40, CRASH, 5),
        ChaosEvent(0.60, CRASH, 0),
        ChaosEvent(0.90, STRAGGLER_START, 3, factor=0.6),
        ChaosEvent(1.10, REVIVE, 0),
        ChaosEvent(1.20, NETWORK_START, factor=3.0),
        ChaosEvent(1.40, STRAGGLER_END, 3),
        ChaosEvent(1.60, REVIVE, 5),
        ChaosEvent(1.70, NETWORK_END),
    ], description="golden crash/recover scenario")
    specs = resident_training_jobs(2, demand_gpus=4)
    return cosched_to_dict(run_cosched(
        "mlp_synthetic", [ServingPhase(2.0, 300.0)], specs,
        pool_devices=6, max_batch=8, max_wait=0.002,
        initial_serving=1, autoscale=True, slo_p99=0.035,
        resize_delay=0.25, seed=2, fault_plan=plan))


def chaos_domain_wipe_recover() -> dict:
    """A correlated rack wipe with load shedding and a revive derate.

    PR 8's failure-domain scenario: a 6-device pool laid out as 3 racks of
    2, serving statically on devices {0, 1}.  Rack 0 — the whole serving
    deployment — is wiped atomically (both crashes at the same timestamp)
    and revived together, so arrivals park during the outage and the
    backlog drains through the shedding admission controller on revive;
    device 0 then runs an ECC derate curve, exercising the DERATE event
    kind, the derate-aware co-scheduler budget, and the brownout admission
    path on the serving lease itself.  Golden under both queue backends:
    the whole wipe/shed/derate/recover timeline must replay bit-identical.
    """
    topology = FailureDomainTopology.regular(3, 2)
    events = domain_wipe_events(topology, "rack", 0, 0.5, 1.3)
    events.extend(ECCThrottle(speed=0.7, duration_s=0.6).events(0, 1.4))
    plan = FaultPlan.from_events(
        events, description="golden domain wipe/recover scenario",
        topology=topology, min_healthy=2)
    specs = resident_training_jobs(2, demand_gpus=2)
    admission = AdmissionPolicy(max_queue_depth=24, max_estimated_wait=0.02,
                                brownout=True)
    return cosched_to_dict(run_cosched(
        "mlp_synthetic", [ServingPhase(2.5, 450.0)], specs,
        pool_devices=6, max_batch=8, max_wait=0.002,
        initial_serving=2, autoscale=False,
        resize_delay=0.25, seed=3, fault_plan=plan,
        admission=admission, topology=topology))


def serve_shed_brownout_wave() -> dict:
    """The batched shed path: depth caps and brownout inside single waves.

    A premium tenant and a 3x best-effort flood drive ~5000 rps at one
    serving device, so every admission pull covers dozens of arrivals —
    large enough for the gateway's vectorized wave admission.  A mid-run
    straggler window derates the serving device with ``brownout=True``
    armed: outside the window both classes share one depth cap (the
    vectorized depth-only fast path), inside it the best-effort cap halves
    (the scalar split-limit replay), and both regimes shed heavily.  Pinned
    end to end so the wave path and the per-request reference oracle must
    replay this timeline bit-identically under both queue backends.
    """
    from repro.serving.tenancy import TenantRegistry

    registry = TenantRegistry.from_spec(
        "prem:class=premium,weight=4,quota=300,share=1;"
        "flood:class=best_effort,weight=1,share=3")
    admission = AdmissionPolicy(max_queue_depth=48, max_estimated_wait=None,
                                brownout=True)
    plan = FaultPlan.from_events([
        ChaosEvent(0.25, STRAGGLER_START, 0, factor=0.5),
        ChaosEvent(0.75, STRAGGLER_END, 0),
    ], description="golden brownout wave-shed scenario")
    specs = resident_training_jobs(1, demand_gpus=2)
    return cosched_to_dict(run_cosched(
        "mlp_synthetic", [ServingPhase(1.0, 5000.0)], specs,
        pool_devices=3, max_batch=8, max_wait=0.002,
        initial_serving=1, autoscale=False,
        resize_delay=0.25, seed=11, fault_plan=plan,
        admission=admission, tenants=registry))


def serve_tenants_wfq() -> dict:
    """The multi-tenant gateway under overload, pinned end to end.

    A premium tenant (weight 4, inside a 250 rps quota) and a best-effort
    tenant carrying twice the load share a 2-device pool that cannot absorb
    the offered rate, with load shedding armed: WFQ ordering, token-bucket
    quota decisions, tenant-attributed sheds, and the per-tenant SLO
    digests all replay bit-identically under both queue backends.
    """
    from repro.serving.tenancy import TenantRegistry

    registry = TenantRegistry.from_spec(
        "prem:class=premium,weight=4,quota=250,share=1;"
        "batch:class=best_effort,weight=1,share=2")
    admission = AdmissionPolicy(max_queue_depth=6, max_estimated_wait=0.012)
    return serving_to_dict(serve_workload(
        "mlp_synthetic", [ServingPhase(1.5, 1500.0)],
        max_batch=8, max_wait=0.002, pool_devices=2, seed=5,
        tenants=registry, admission=admission))


# The fixture matrix.  Simulation fixtures cover both schedulers on the
# canonical §6.4.1 trace plus a 20-job Poisson trace (hundreds of events,
# resizes, queueing); serving fixtures cover a fixed mapping and a spiky
# autoscaled run (remaps, §4.1 costs, device-second accounting); the chaos
# fixture pins a crash/recover timeline end to end.
def capture() -> dict:
    fixtures = {}
    trace3 = three_job_trace()
    fixtures["sim_three_job_wfs"] = sim_to_dict(
        ClusterSimulator(4, ElasticWFSScheduler()).run(trace3))
    fixtures["sim_three_job_static"] = sim_to_dict(
        ClusterSimulator(4, StaticPriorityScheduler()).run(trace3))
    trace20 = generate_trace(20, 12, seed=0)
    fixtures["sim_trace20_wfs"] = sim_to_dict(
        ClusterSimulator(8, ElasticWFSScheduler()).run(trace20))

    fixtures["serve_fixed"] = serving_to_dict(serve_workload(
        "mlp_synthetic", [ServingPhase(1.0, 300.0)],
        max_batch=8, max_wait=0.002, pool_devices=4, seed=0))
    fixtures["serve_tenants_wfq"] = serve_tenants_wfq()
    fixtures["serve_shed_brownout_wave"] = serve_shed_brownout_wave()
    fixtures["serve_autoscaled"] = serving_to_dict(serve_workload(
        "mlp_synthetic", spike_phases(400.0, 6.0, 3.0, 1.0),
        max_batch=16, max_wait=0.002, pool_devices=8,
        autoscale=True, slo_p99=0.030, initial_devices=2, seed=1))
    fixtures["cosched_chaos_crash_recover"] = chaos_crash_recover()
    fixtures["cosched_domain_wipe_recover"] = chaos_domain_wipe_recover()
    return fixtures


def main() -> int:
    for name, payload in capture().items():
        path = os.path.join(HERE, f"{name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
