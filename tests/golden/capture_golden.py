"""Capture golden-trace fixtures for the discrete-event runtime refactor.

The runtime refactor (shared ``repro.runtime`` event loop under both the
elastic simulator and the serving router) carries a hard acceptance bar: the
refactored implementations must be **bit-identical** to the pre-refactor
loops on the seed traces.  This script serializes the observable outputs of
:class:`~repro.elastic.simulator.ClusterSimulator` and
:class:`~repro.serving.router.RequestRouter` — every float exactly as
computed, via JSON's shortest-round-trip repr — into ``tests/golden/*.json``.

The committed fixtures were captured from the pre-refactor implementations
(commit 4c4052e).  Re-running the script regenerates them from whatever the
current implementation produces::

    PYTHONPATH=src python tests/golden/capture_golden.py

so regenerate only when an *intentional* behavior change makes the old
fixtures obsolete, and say so in the commit message.
"""

from __future__ import annotations

import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))

from repro.elastic import (  # noqa: E402
    ClusterSimulator,
    ElasticWFSScheduler,
    ServingPhase,
    StaticPriorityScheduler,
    generate_trace,
    spike_phases,
    three_job_trace,
)
from repro.serving import serve_workload  # noqa: E402


def sim_to_dict(result) -> dict:
    """Every observable field of a SimulationResult, floats untouched."""
    return {
        "scheduler_name": result.scheduler_name,
        "total_gpus": result.total_gpus,
        "makespan": result.makespan,
        "utilization": result.utilization(),
        "allocation_history": [
            [t, {str(k): v for k, v in alloc.items()}]
            for t, alloc in result.allocation_history
        ],
        "jobs": {
            str(job_id): {
                "status": state.status.value,
                "gpus": state.gpus,
                "steps_done": state.steps_done,
                "first_alloc_time": state.first_alloc_time,
                "finish_time": state.finish_time,
                "allocation_log": [[t, g] for t, g in state.allocation_log],
                "resizes": state.resizes,
            }
            for job_id, state in result.jobs.items()
        },
    }


def serving_to_dict(report) -> dict:
    """Every observable field of a ServingReport (logits excluded)."""
    return {
        "duration": report.duration,
        "device_seconds": report.device_seconds,
        "final_devices": report.final_devices,
        "records": [
            {
                "request_id": r.request_id,
                "arrival_time": r.arrival_time,
                "dispatch_time": r.dispatch_time,
                "completion_time": r.completion_time,
                "batch_id": r.batch_id,
                "batch_size": r.batch_size,
                "devices": r.devices,
                "client": r.client,
            }
            for r in report.records
        ],
        "batches": [
            {
                "batch_id": b.batch_id,
                "dispatch_time": b.dispatch_time,
                "completion_time": b.completion_time,
                "size": b.size,
                "devices": b.devices,
                "waves": b.waves,
            }
            for b in report.batches
        ],
        "scaling_events": [list(e) for e in report.scaling_events],
    }


# The fixture matrix.  Simulation fixtures cover both schedulers on the
# canonical §6.4.1 trace plus a 20-job Poisson trace (hundreds of events,
# resizes, queueing); serving fixtures cover a fixed mapping and a spiky
# autoscaled run (remaps, §4.1 costs, device-second accounting).
def capture() -> dict:
    fixtures = {}
    trace3 = three_job_trace()
    fixtures["sim_three_job_wfs"] = sim_to_dict(
        ClusterSimulator(4, ElasticWFSScheduler()).run(trace3))
    fixtures["sim_three_job_static"] = sim_to_dict(
        ClusterSimulator(4, StaticPriorityScheduler()).run(trace3))
    trace20 = generate_trace(20, 12, seed=0)
    fixtures["sim_trace20_wfs"] = sim_to_dict(
        ClusterSimulator(8, ElasticWFSScheduler()).run(trace20))

    fixtures["serve_fixed"] = serving_to_dict(serve_workload(
        "mlp_synthetic", [ServingPhase(1.0, 300.0)],
        max_batch=8, max_wait=0.002, pool_devices=4, seed=0))
    fixtures["serve_autoscaled"] = serving_to_dict(serve_workload(
        "mlp_synthetic", spike_phases(400.0, 6.0, 3.0, 1.0),
        max_batch=16, max_wait=0.002, pool_devices=8,
        autoscale=True, slo_p99=0.030, initial_devices=2, seed=1))
    return fixtures


def main() -> int:
    for name, payload in capture().items():
        path = os.path.join(HERE, f"{name}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
