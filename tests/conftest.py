"""Shared test fixtures and numerical helpers."""

from __future__ import annotations

from typing import Callable

import numpy as np
import pytest

from repro.core import Mapping, VirtualFlowExecutor, VirtualNodeSet
from repro.data import make_dataset
from repro.framework import SoftmaxCrossEntropy, get_workload
from repro.hardware import Cluster


def numeric_gradient(f: Callable[[], float], array: np.ndarray,
                     eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = array[idx]
        array[idx] = orig + eps
        f_plus = f()
        array[idx] = orig - eps
        f_minus = f()
        array[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def assert_grads_close(analytic: np.ndarray, numeric: np.ndarray,
                       rtol: float = 1e-5, atol: float = 1e-7) -> None:
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def build_executor(workload_name: str = "mlp_synthetic", global_batch: int = 32,
                   num_vns: int = 4, num_devices: int = 1, seed: int = 0,
                   device_type: str = "V100") -> VirtualFlowExecutor:
    """A small ready-to-step executor for integration tests."""
    workload = get_workload(workload_name)
    vn_set = VirtualNodeSet.even(global_batch, num_vns)
    cluster = Cluster.homogeneous(device_type, num_devices)
    mapping = Mapping.even(vn_set, cluster)
    return VirtualFlowExecutor(
        workload=workload,
        model=workload.build_model(seed),
        loss_fn=SoftmaxCrossEntropy(),
        optimizer=workload.build_optimizer(),
        mapping=mapping,
        seed=seed,
    )


@pytest.fixture
def small_dataset():
    return make_dataset("synthetic_vectors", n=256, seed=0)
