"""Telemetry recorder."""

from __future__ import annotations

import csv
import json

import pytest

from repro import TrainerConfig, VirtualFlowTrainer
from repro.telemetry import TelemetryRecorder, summary_stats


@pytest.fixture
def run():
    recorder = TelemetryRecorder()
    trainer = VirtualFlowTrainer(TrainerConfig(
        workload="mlp_synthetic", global_batch_size=32, num_virtual_nodes=4,
        num_devices=2, dataset_size=256))
    for _ in range(2):
        record = trainer.train_epoch(on_step=recorder.on_step)
        recorder.on_epoch(record)
    return trainer, recorder


class TestSummaryStats:
    def test_values(self):
        stats = summary_stats([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["p50"] == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_stats([])


class TestRecorder:
    def test_counts(self, run):
        trainer, recorder = run
        assert len(recorder.steps) == 2 * trainer.loader.steps_per_epoch
        assert len(recorder.epochs) == 2
        assert recorder.total_examples() == len(recorder.steps) * 32

    def test_total_sim_time_matches_trainer(self, run):
        trainer, recorder = run
        assert recorder.total_sim_time() == pytest.approx(trainer.sim_time)

    def test_summaries(self, run):
        _, recorder = run
        loss = recorder.loss_summary()
        assert loss["min"] <= loss["p50"] <= loss["max"]
        assert recorder.throughput_summary()["mean"] > 0

    def test_csv_export(self, run, tmp_path):
        _, recorder = run
        path = str(tmp_path / "steps.csv")
        recorder.to_csv(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(recorder.steps)
        assert float(rows[0]["loss"]) == pytest.approx(recorder.steps[0].loss)

    def test_json_export(self, run, tmp_path):
        _, recorder = run
        path = str(tmp_path / "run.json")
        recorder.to_json(path)
        data = json.loads(open(path).read())
        assert len(data["steps"]) == len(recorder.steps)
        assert len(data["epochs"]) == 2
        assert data["summaries"]["loss"]["mean"] > 0

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryRecorder().to_csv(str(tmp_path / "x.csv"))

    def test_step_indices_sequential(self, run):
        _, recorder = run
        assert [s.step for s in recorder.steps] == list(range(len(recorder.steps)))
