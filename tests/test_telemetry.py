"""Telemetry recorder."""

from __future__ import annotations

import csv
import json

import pytest

from repro import TrainerConfig, VirtualFlowTrainer
from repro.telemetry import TelemetryRecorder, summary_stats


@pytest.fixture
def run():
    recorder = TelemetryRecorder()
    trainer = VirtualFlowTrainer(TrainerConfig(
        workload="mlp_synthetic", global_batch_size=32, num_virtual_nodes=4,
        num_devices=2, dataset_size=256))
    for _ in range(2):
        record = trainer.train_epoch(on_step=recorder.on_step)
        recorder.on_epoch(record)
    return trainer, recorder


class TestSummaryStats:
    def test_values(self):
        stats = summary_stats([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["p50"] == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_stats([])


class TestRecorder:
    def test_counts(self, run):
        trainer, recorder = run
        assert len(recorder.steps) == 2 * trainer.loader.steps_per_epoch
        assert len(recorder.epochs) == 2
        assert recorder.total_examples() == len(recorder.steps) * 32

    def test_total_sim_time_matches_trainer(self, run):
        trainer, recorder = run
        assert recorder.total_sim_time() == pytest.approx(trainer.sim_time)

    def test_summaries(self, run):
        _, recorder = run
        loss = recorder.loss_summary()
        assert loss["min"] <= loss["p50"] <= loss["max"]
        assert recorder.throughput_summary()["mean"] > 0

    def test_csv_export(self, run, tmp_path):
        _, recorder = run
        path = str(tmp_path / "steps.csv")
        recorder.to_csv(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(recorder.steps)
        assert float(rows[0]["loss"]) == pytest.approx(recorder.steps[0].loss)

    def test_json_export(self, run, tmp_path):
        _, recorder = run
        path = str(tmp_path / "run.json")
        recorder.to_json(path)
        data = json.loads(open(path).read())
        assert len(data["steps"]) == len(recorder.steps)
        assert len(data["epochs"]) == 2
        assert data["summaries"]["loss"]["mean"] > 0

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryRecorder().to_csv(str(tmp_path / "x.csv"))

    def test_step_indices_sequential(self, run):
        _, recorder = run
        assert [s.step for s in recorder.steps] == list(range(len(recorder.steps)))


class TestLatencyHistogramCache:
    def test_cached_sorted_view_matches_fresh_sort(self):
        import numpy as np
        from repro.telemetry import LatencyHistogram, percentile

        rng = np.random.default_rng(5)
        hist = LatencyHistogram(window=512)
        values = rng.lognormal(-3.5, 0.8, size=2000)
        for i, v in enumerate(values):
            hist.observe(float(v))
            if i % 97 == 0:  # interleave queries with inserts
                window = list(hist._values)
                assert hist.percentile(99) == percentile(window, 99)
        window = list(hist._values)
        for q in (50, 90, 95, 99):
            assert hist.percentile(q) == percentile(window, q)

    def test_repeated_queries_reuse_the_cache(self):
        from repro.telemetry import LatencyHistogram

        hist = LatencyHistogram()
        hist.observe_many([0.003, 0.001, 0.002])
        first = hist.percentile(50)
        view = hist._sorted
        assert view is not None
        assert hist.percentile(50) == first
        assert hist._sorted is view  # no re-sort between queries
        hist.observe(0.004)
        assert hist._sorted is None  # invalidated by new data

    def test_observe_many_rejects_negatives_and_matches_loop(self):
        import pytest as _pytest

        from repro.telemetry import LatencyHistogram

        bulk = LatencyHistogram(window=8)
        loop = LatencyHistogram(window=8)
        values = [0.005, 0.001, 0.009, 0.002, 0.007, 0.004, 0.008, 0.003,
                  0.006, 0.010]
        bulk.observe_many(values)
        for v in values:
            loop.observe(v)
        assert list(bulk._values) == list(loop._values)
        assert bulk.percentile(99) == loop.percentile(99)
        with _pytest.raises(ValueError):
            bulk.observe_many([0.001, -0.5])


class TestStreamingHistogram:
    def test_quantiles_within_tolerance_of_exact(self):
        import numpy as np

        from repro.telemetry import LatencyHistogram, StreamingHistogram

        rng = np.random.default_rng(13)
        values = rng.lognormal(mean=-3.5, sigma=0.7, size=50_000)
        stream = StreamingHistogram()
        exact = LatencyHistogram()
        stream.observe_many(values)
        exact.observe_many(values)
        for q in (50, 90, 95, 99):
            approx = stream.percentile(q)
            truth = exact.percentile(q)
            assert abs(approx - truth) / truth < 0.05, (q, approx, truth)

    def test_observe_many_matches_observe_loop(self):
        import numpy as np

        from repro.telemetry import StreamingHistogram

        rng = np.random.default_rng(14)
        values = rng.lognormal(-4.0, 1.0, size=5000)
        bulk, loop = StreamingHistogram(), StreamingHistogram()
        bulk.observe_many(values)
        for v in values:
            loop.observe(float(v))
        assert bulk.count == loop.count == len(values)
        assert (bulk._counts == loop._counts).all()
        assert bulk.percentile(99) == loop.percentile(99)

    def test_exact_extremes_and_mean(self):
        from repro.telemetry import StreamingHistogram

        hist = StreamingHistogram()
        hist.observe_many([0.001, 0.010, 0.005])
        assert hist._min == 0.001 and hist._max == 0.010
        assert hist.mean == pytest.approx((0.001 + 0.010 + 0.005) / 3)
        assert hist.percentile(0) >= 0.001
        assert hist.percentile(100) <= 0.010
        stats = hist.stats()
        assert stats["count"] == 3.0

    def test_memory_is_constant_and_clear_resets(self):
        import numpy as np

        from repro.telemetry import StreamingHistogram

        hist = StreamingHistogram()
        nbins = hist._counts.size
        hist.observe_many(np.full(100_000, 0.004))
        assert hist._counts.size == nbins  # no growth with observations
        assert len(hist) == 100_000
        hist.clear()
        assert len(hist) == 0
        with pytest.raises(ValueError):
            hist.percentile(50)

    def test_out_of_range_values_clamp(self):
        from repro.telemetry import StreamingHistogram

        hist = StreamingHistogram(min_value=1e-3, max_value=1.0)
        hist.observe(0.0)       # underflow bin
        hist.observe(5.0)       # clamps to the last bin
        assert len(hist) == 2
        assert hist.percentile(0) == 0.0  # anchored on the exact min
        # The overflow value is clamped into the top bin; the quantile
        # stays inside the exact observed range.
        assert 0.0 <= hist.percentile(99) <= 5.0
        with pytest.raises(ValueError):
            hist.observe(-1.0)
