"""Heterogeneous solver and assignments (§5)."""

from __future__ import annotations

import pytest

from repro.core import ExecutionPlan
from repro.framework import get_workload
from repro.hetero import HeterogeneousSolver, TypeAssignment, materialize
from repro.hetero.solver import _min_vn_count
from repro.profiler import OfflineProfiler


@pytest.fixture(scope="module")
def resnet_solver():
    store = OfflineProfiler(seed=0).profile_all(
        "resnet50_imagenet", ["V100", "P100", "K80"])
    return HeterogeneousSolver("resnet50_imagenet", store)


class TestMinVnCount:
    def test_fits_in_one(self):
        assert _min_vn_count(128, 256) == 1

    def test_needs_division(self):
        assert _min_vn_count(1024, 256) == 4

    def test_divisor_constraint(self):
        # 100 with max wave 30: 100/4=25 <= 30 and 4 | 100.
        assert _min_vn_count(100, 30) == 4

    def test_infeasible(self):
        assert _min_vn_count(7, 0) is None


class TestTypeAssignment:
    def test_wave_batch(self):
        ta = TypeAssignment("V100", 2, 3072, 16)
        assert ta.wave_batch == 192
        assert ta.examples == 6144

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            TypeAssignment("V100", 1, 100, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TypeAssignment("V100", 0, 8, 1)


class TestSolver:
    def test_uneven_beats_even_fig7(self, resnet_solver):
        """Figure 7 (right): 3072:1024 split beats 2048:2048 substantially."""
        even = resnet_solver.predict_assignment([
            TypeAssignment("V100", 2, 2048, 8), TypeAssignment("P100", 2, 2048, 8)])
        uneven = resnet_solver.predict_assignment([
            TypeAssignment("V100", 2, 3072, 16), TypeAssignment("P100", 2, 1024, 4)])
        assert uneven.predicted_step_time < even.predicted_step_time
        speedup = 1 - uneven.predicted_step_time / even.predicted_step_time
        assert speedup > 0.35  # paper reports ~44% shorter step

    def test_solve_beats_both_manual_configs(self, resnet_solver):
        best = resnet_solver.solve({"V100": 2, "P100": 2}, 8192)
        uneven = resnet_solver.predict_assignment([
            TypeAssignment("V100", 2, 3072, 16), TypeAssignment("P100", 2, 1024, 4)])
        assert best.predicted_step_time <= uneven.predicted_step_time * 1.001

    def test_constraint_satisfied(self, resnet_solver):
        best = resnet_solver.solve({"V100": 2, "P100": 2}, 8192)
        assert best.global_batch_size == 8192

    def test_fast_gpus_get_more_data(self, resnet_solver):
        best = resnet_solver.solve({"V100": 2, "P100": 2}, 8192)
        if not best.is_homogeneous:
            per = {a.device_type: a.batch_per_device for a in best.assignments}
            assert per["V100"] > per["P100"]

    def test_homogeneous_fallback(self, resnet_solver):
        """§5.1.2: when slow GPUs cannot compensate, stay homogeneous.

        At a small global batch, even the smallest grid share on a K80
        (12.5x slower than a V100) costs more than it saves, so the solver
        must recommend the V100-only configuration — the paper's H1-group
        fallback behaviour.
        """
        best = resnet_solver.solve({"V100": 1, "K80": 1}, 512)
        assert best.is_homogeneous
        assert best.assignments[0].device_type == "V100"

    def test_hetero_chosen_when_it_helps(self, resnet_solver):
        """H2/H3 shape: at large batches extra P100s raise throughput."""
        best = resnet_solver.solve({"V100": 2, "P100": 2}, 8192)
        v100_only = resnet_solver.solve_homogeneous({"V100": 2}, 8192)
        assert not best.is_homogeneous
        assert best.predicted_throughput > v100_only.predicted_throughput

    def test_single_type_pool(self, resnet_solver):
        best = resnet_solver.solve({"V100": 4}, 8192)
        assert best.is_homogeneous
        assert best.assignments[0].num_devices == 4

    def test_infeasible_raises(self, resnet_solver):
        with pytest.raises(ValueError):
            resnet_solver.solve({}, 1024)
        with pytest.raises(ValueError):
            resnet_solver.solve({"V100": 1}, 0)

    def test_solver_prediction_close_to_perf_model(self, resnet_solver):
        """Figure 14: solver predictions within ~6% of 'actual' step times."""
        wl = get_workload("resnet50_imagenet")
        best = resnet_solver.solve({"V100": 2, "P100": 2}, 8192)
        _, _, mapping = materialize(best)
        actual = ExecutionPlan(wl, mapping).step_time()
        assert best.predicted_step_time == pytest.approx(actual, rel=0.08)


class TestMaterialize:
    def test_roundtrip_structure(self, resnet_solver):
        best = resnet_solver.predict_assignment([
            TypeAssignment("V100", 2, 3072, 16), TypeAssignment("P100", 2, 1024, 4)])
        cluster, vn_set, mapping = materialize(best)
        assert cluster.counts() == {"V100": 2, "P100": 2}
        assert vn_set.global_batch_size == 8192
        # P100 ids come first (sorted type name); each hosts 4 waves of 256.
        assert mapping.local_batch(0) == 1024
        assert mapping.local_batch(2) == 3072

    def test_wave_batches_match_assignment(self, resnet_solver):
        best = resnet_solver.predict_assignment([
            TypeAssignment("P100", 1, 512, 2), TypeAssignment("V100", 1, 512, 2)])
        _, vn_set, mapping = materialize(best)
        assert mapping.wave_batches()[0] == [256, 256]

    def test_plan_validates_memory(self, resnet_solver):
        """Materialized solver output always fits device memory."""
        wl = get_workload("resnet50_imagenet")
        best = resnet_solver.solve({"V100": 2, "P100": 2}, 8192)
        _, _, mapping = materialize(best)
        ExecutionPlan(wl, mapping)  # must not raise
