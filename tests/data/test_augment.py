"""Augmentation transforms and their mapping-invariance integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TrainerConfig, VirtualFlowTrainer
from repro.data.augment import (
    Compose,
    GaussianNoise,
    RandomCrop,
    RandomHorizontalFlip,
    TokenDropout,
)


@pytest.fixture
def images(rng):
    return rng.standard_normal((8, 6, 6, 3))


class TestTransforms:
    def test_flip_deterministic_given_rng(self, images):
        t = RandomHorizontalFlip(p=0.5)
        a = t(images, np.random.default_rng(3))
        b = t(images, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_flip_does_not_mutate_input(self, images):
        t = RandomHorizontalFlip(p=1.0)
        before = images.copy()
        t(images, np.random.default_rng(0))
        np.testing.assert_array_equal(images, before)

    def test_flip_p1_reverses_width(self, images):
        out = RandomHorizontalFlip(p=1.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images[:, :, ::-1, :])

    def test_flip_p0_identity(self, images):
        out = RandomHorizontalFlip(p=0.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)

    def test_flip_requires_nhwc(self, rng):
        with pytest.raises(ValueError):
            RandomHorizontalFlip()(rng.standard_normal((4, 4)), np.random.default_rng(0))

    def test_crop_preserves_shape(self, images):
        out = RandomCrop(padding=2)(images, np.random.default_rng(1))
        assert out.shape == images.shape

    def test_crop_center_content_survives(self):
        """With padding 1, the crop window always contains the inner pixels."""
        x = np.zeros((1, 4, 4, 1))
        x[0, 1:3, 1:3, 0] = 1.0
        out = RandomCrop(padding=1)(x, np.random.default_rng(5))
        assert out.sum() >= 1.0  # at least part of the 2x2 block remains

    def test_noise_zero_std_identity(self, images):
        out = GaussianNoise(std=0.0)(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images)

    def test_noise_scale(self, rng):
        x = np.zeros((64, 8, 8, 1))
        out = GaussianNoise(std=0.5)(x, np.random.default_rng(2))
        assert out.std() == pytest.approx(0.5, rel=0.1)

    def test_token_dropout_masks(self):
        x = np.full((32, 16), 7, dtype=np.int64)
        out = TokenDropout(p=0.5, mask_token=0)(x, np.random.default_rng(4))
        frac = (out == 0).mean()
        assert 0.3 < frac < 0.7
        assert set(np.unique(out)) <= {0, 7}

    def test_token_dropout_requires_integers(self, images):
        with pytest.raises(ValueError):
            TokenDropout()(images, np.random.default_rng(0))

    def test_compose_applies_in_order(self, images):
        t = Compose([RandomHorizontalFlip(p=1.0), GaussianNoise(std=0.0)])
        out = t(images, np.random.default_rng(0))
        np.testing.assert_array_equal(out, images[:, :, ::-1, :])

    def test_compose_empty_rejected(self):
        with pytest.raises(ValueError):
            Compose([])

    @pytest.mark.parametrize("bad", [
        lambda: RandomHorizontalFlip(p=1.5),
        lambda: RandomCrop(padding=0),
        lambda: GaussianNoise(std=-1),
        lambda: TokenDropout(p=1.0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            bad()


class TestAugmentedTrainingInvariance:
    def test_augmentation_preserves_mapping_invariance(self):
        """Augmented pixels come from per-VN streams -> still bit-identical."""
        augment = Compose([RandomHorizontalFlip(p=0.5), GaussianNoise(std=0.1)])

        def run(devices):
            t = VirtualFlowTrainer(
                TrainerConfig(workload="resnet56_cifar10", global_batch_size=32,
                              num_virtual_nodes=4, num_devices=devices,
                              dataset_size=256, seed=6),
                augment=augment)
            t.train(epochs=1)
            return t.executor.model.parameters()

        pa, pb = run(1), run(4)
        for k in pa:
            np.testing.assert_array_equal(pa[k], pb[k])

    def test_augmentation_changes_training(self):
        def run(augment):
            t = VirtualFlowTrainer(
                TrainerConfig(workload="resnet56_cifar10", global_batch_size=32,
                              num_virtual_nodes=4, num_devices=1,
                              dataset_size=256, seed=6),
                augment=augment)
            t.train(epochs=1)
            return t.executor.model.parameters()

        plain = run(None)
        noisy = run(GaussianNoise(std=0.3))
        assert any(not np.array_equal(plain[k], noisy[k]) for k in plain)
