"""Datasets and the batch loader."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import BatchLoader, make_dataset
from repro.data.datasets import (
    synthetic_image_dataset,
    synthetic_text_dataset,
    synthetic_vector_dataset,
)


class TestDatasets:
    def test_deterministic_content(self):
        a = make_dataset("synthetic_imagenet", n=128, seed=4)
        b = make_dataset("synthetic_imagenet", n=128, seed=4)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_seeds_differ(self):
        a = make_dataset("synthetic_imagenet", n=128, seed=1)
        b = make_dataset("synthetic_imagenet", n=128, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_split_sizes(self):
        ds = synthetic_vector_dataset(n=100, val_fraction=0.2)
        assert ds.n_val == 20 and ds.n_train == 80

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            make_dataset("mnist")

    @pytest.mark.parametrize("name", ["synthetic_vectors", "synthetic_imagenet",
                                      "synthetic_cifar10", "synthetic_glue",
                                      "synthetic_wmt"])
    def test_all_builders(self, name):
        ds = make_dataset(name, n=64, seed=0)
        assert ds.n_train + ds.n_val == 64
        assert ds.num_classes >= 2
        assert len(ds.x_train) == len(ds.y_train)

    def test_text_tokens_in_vocab(self):
        ds = synthetic_text_dataset(n=64, vocab_size=32)
        assert ds.x_train.min() >= 0
        assert ds.x_train.max() < 32
        assert ds.x_train.dtype == np.int64

    def test_text_vocab_too_small(self):
        with pytest.raises(ValueError, match="vocab"):
            synthetic_text_dataset(num_classes=10, signal_tokens=5, vocab_size=32)

    def test_images_shape(self):
        ds = synthetic_image_dataset(n=32, image_size=8, channels=3)
        assert ds.x_train.shape[1:] == (8, 8, 3)

    def test_task_is_learnable_signal(self):
        """Class centers must be separated enough to learn (sanity on noise)."""
        ds = synthetic_vector_dataset(n=2000, noise=1.0, label_noise=0.0)
        # Nearest-centroid on train centers classifies val far above chance.
        centers = np.stack([ds.x_train[ds.y_train == c].mean(axis=0)
                            for c in range(ds.num_classes)])
        d = ((ds.x_val[:, None, :] - centers[None]) ** 2).sum(-1)
        acc = (d.argmin(1) == ds.y_val).mean()
        assert acc > 0.6


class TestBatchLoader:
    def _loader(self, batch=16, n=128, shuffle=True):
        ds = make_dataset("synthetic_vectors", n=n, seed=0)
        return BatchLoader(ds, batch, seed=0, shuffle=shuffle)

    def test_steps_per_epoch(self):
        loader = self._loader(batch=16, n=128)  # 102 train examples
        assert loader.steps_per_epoch == loader.dataset.n_train // 16

    def test_epoch_covers_each_example_at_most_once(self):
        loader = self._loader(batch=16)
        seen = np.concatenate([b.indices for b in loader.epoch(0)])
        assert len(seen) == len(set(seen.tolist()))

    def test_epoch_order_is_seed_determined(self):
        a = self._loader().epoch_order(3)
        b = self._loader().epoch_order(3)
        np.testing.assert_array_equal(a, b)
        c = self._loader().epoch_order(4)
        assert not np.array_equal(a, c)

    def test_no_shuffle_is_sequential(self):
        loader = self._loader(shuffle=False)
        np.testing.assert_array_equal(loader.epoch_order(0),
                                      np.arange(loader.dataset.n_train))

    def test_random_access_matches_iteration(self):
        loader = self._loader(batch=16)
        batches = list(loader.epoch(1))
        direct = loader.batch(1, 2)
        np.testing.assert_array_equal(direct.x, batches[2].x)
        np.testing.assert_array_equal(direct.indices, batches[2].indices)

    def test_step_out_of_range(self):
        loader = self._loader()
        with pytest.raises(IndexError):
            loader.batch(0, loader.steps_per_epoch)

    def test_batch_too_large(self):
        ds = make_dataset("synthetic_vectors", n=64, seed=0)
        with pytest.raises(ValueError, match="exceeds"):
            BatchLoader(ds, 10_000)

    def test_labels_track_examples(self):
        loader = self._loader(batch=8)
        for b in loader.epoch(0):
            np.testing.assert_array_equal(b.y, loader.dataset.y_train[b.indices])

    @given(st.integers(1, 64), st.integers(0, 5))
    @settings(max_examples=30, deadline=None)
    def test_property_batches_disjoint(self, batch, epoch):
        ds = make_dataset("synthetic_vectors", n=256, seed=0)
        loader = BatchLoader(ds, batch, seed=0)
        seen = [i for b in loader.epoch(epoch) for i in b.indices.tolist()]
        assert len(seen) == len(set(seen))
        assert len(seen) == loader.steps_per_epoch * batch
