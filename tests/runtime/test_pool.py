"""DevicePool lease invariants and device-second conservation."""

from __future__ import annotations

import pytest

from repro.runtime import DevicePool, LeaseError


class TestLeaseInvariants:
    def test_acquire_hands_out_lowest_free_ids(self):
        pool = DevicePool(4)
        lease = pool.acquire("a", 2)
        assert lease.device_ids == (0, 1)
        assert pool.free_ids == (2, 3)

    def test_no_double_lease(self):
        pool = DevicePool(4)
        pool.acquire("a", 2)
        with pytest.raises(LeaseError):
            pool.acquire("b", 2, ids=[1, 2])  # 1 is already held by "a"

    def test_free_count_never_negative(self):
        pool = DevicePool(4)
        lease = pool.acquire("a", 3)
        with pytest.raises(LeaseError):
            pool.acquire("b", 2)
        pool.resize(lease, 4, 1.0)
        assert pool.free_count == 0
        with pytest.raises(LeaseError):
            pool.resize(lease, 5, 2.0)

    def test_grow_takes_lowest_shrink_returns_highest(self):
        pool = DevicePool(6)
        lease = pool.acquire("a", 2)           # (0, 1)
        pool.resize(lease, 4, 1.0)
        assert lease.device_ids == (0, 1, 2, 3)
        gained, lost = pool.resize(lease, 1, 2.0)
        assert gained == () and lost == (1, 2, 3)
        assert lease.device_ids == (0,)        # prefix survives
        assert pool.free_ids == (1, 2, 3, 4, 5)

    def test_solo_lease_always_holds_a_prefix(self):
        # The property the golden serving traces rely on: a lease alone on
        # the pool always holds exactly [0..k), whatever the resize path.
        pool = DevicePool(8)
        lease = pool.acquire("router", 2)
        for step, size in enumerate((4, 1, 8, 3)):
            pool.resize(lease, size, float(step + 1))
            assert lease.device_ids == tuple(range(size))

    def test_release_frees_everything(self):
        pool = DevicePool(4)
        lease = pool.acquire("a", 3)
        pool.release(lease, 1.0)
        assert not lease.active
        assert pool.free_count == 4
        with pytest.raises(LeaseError):
            pool.resize(lease, 2, 2.0)
        with pytest.raises(LeaseError):
            pool.release(lease, 2.0)

    def test_foreign_lease_rejected(self):
        a, b = DevicePool(2), DevicePool(2)
        lease = a.acquire("x", 1)
        with pytest.raises(LeaseError):
            b.resize(lease, 2, 1.0)

    def test_explicit_ids_must_match_count(self):
        pool = DevicePool(4)
        with pytest.raises(ValueError):
            pool.acquire("a", 2, ids=[0])

    def test_zero_size_lease_allowed(self):
        # A preempted training job holds a zero-size lease until devices
        # come back; that must be representable.
        pool = DevicePool(2)
        lease = pool.acquire("job", 0)
        assert lease.size == 0 and pool.free_count == 2
        pool.resize(lease, 2, 1.0)
        assert lease.size == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DevicePool(0)
        with pytest.raises(ValueError):
            DevicePool([1, 1])
        pool = DevicePool(2)
        with pytest.raises(ValueError):
            pool.acquire("a", -1)
        lease = pool.acquire("a", 1)
        with pytest.raises(ValueError):
            pool.resize(lease, -2, 1.0)


class TestDeviceSecondAccounting:
    def test_lease_accrues_at_each_size(self):
        pool = DevicePool(8)
        lease = pool.acquire("a", 2, 0.0)
        pool.resize(lease, 4, 10.0)    # 2 devices for 10 s
        pool.resize(lease, 1, 15.0)    # 4 devices for 5 s
        pool.settle(20.0)              # 1 device for 5 s
        assert lease.device_seconds == pytest.approx(2 * 10 + 4 * 5 + 1 * 5)

    def test_time_cannot_run_backwards(self):
        pool = DevicePool(2)
        lease = pool.acquire("a", 1, 5.0)
        with pytest.raises(LeaseError):
            pool.resize(lease, 2, 4.0)

    def test_conservation_audit(self):
        pool = DevicePool(4)
        a = pool.acquire("a", 2, 0.0)
        b = pool.acquire("b", 1, 1.0)
        pool.resize(a, 3, 2.0)
        pool.release(b, 3.0)
        audit = pool.audit(10.0)
        assert audit["busy_device_seconds"] == pytest.approx(
            pool.device_seconds())
        assert (audit["busy_device_seconds"] + audit["idle_device_seconds"]
                == pytest.approx(4 * 10.0))

    def test_per_owner_attribution(self):
        pool = DevicePool(4)
        a = pool.acquire("train", 2, 0.0)
        pool.acquire("serve", 1, 0.0)
        pool.settle(8.0)
        assert pool.device_seconds("train") == pytest.approx(16.0)
        assert pool.device_seconds("serve") == pytest.approx(8.0)
        assert pool.device_seconds() == pytest.approx(24.0)
        pool.release(a, 8.0)
        # Released leases keep contributing their history.
        assert pool.device_seconds("train") == pytest.approx(16.0)


class TestFailRevive:
    """Crash/revive quarantine invariants the chaos controller relies on."""

    def test_fail_leased_device_revokes_it(self):
        pool = DevicePool(4)
        lease = pool.acquire("train", 3, 0.0)
        owner = pool.fail_device(1, 1.0)
        assert owner is lease
        assert lease.device_ids == (0, 2)
        assert pool.failed_ids == (1,)
        assert pool.healthy_capacity == 3
        assert pool.lease_of(1) is None

    def test_fail_free_device_quarantines_it(self):
        pool = DevicePool(4)
        pool.acquire("a", 2, 0.0)
        assert pool.fail_device(3, 1.0) is None
        assert pool.free_ids == (2,)
        assert pool.free_count == 1
        # The quarantined device is not leasable.
        with pytest.raises(LeaseError):
            pool.acquire("b", 1, 1.0, ids=[3])

    def test_no_double_lease_after_revive(self):
        pool = DevicePool(2)
        a = pool.acquire("a", 2, 0.0)
        pool.fail_device(0, 1.0)
        pool.revive_device(0, 2.0)
        # Revive frees the device; it must be leasable exactly once.
        b = pool.acquire("b", 1, 2.0)
        assert b.device_ids == (0,)
        assert set(a.device_ids) & set(b.device_ids) == set()
        with pytest.raises(LeaseError):
            pool.acquire("c", 1, 2.0, ids=[0])

    def test_free_count_never_negative_under_churn(self):
        pool = DevicePool(3)
        lease = pool.acquire("a", 3, 0.0)
        for t, dev in ((1.0, 0), (1.5, 1), (2.0, 2)):
            pool.fail_device(dev, t)
            assert pool.free_count >= 0
        assert lease.size == 0 and pool.free_count == 0
        for t, dev in ((3.0, 0), (3.5, 1), (4.0, 2)):
            pool.revive_device(dev, t)
            assert 0 <= pool.free_count <= 3
        assert pool.free_count == 3

    def test_fail_unknown_or_failed_device_rejected(self):
        pool = DevicePool(2)
        with pytest.raises(LeaseError):
            pool.fail_device(7, 0.0)
        pool.fail_device(1, 0.0)
        with pytest.raises(LeaseError):
            pool.fail_device(1, 1.0)       # already down
        with pytest.raises(LeaseError):
            pool.revive_device(0, 1.0)     # never failed

    def test_three_way_conservation_across_crash_revive(self):
        # busy + idle + failed == capacity * elapsed, exactly.
        pool = DevicePool(4)
        lease = pool.acquire("train", 3, 0.0)
        pool.fail_device(1, 2.0)           # leased -> failed
        pool.fail_device(3, 3.0)           # free -> failed
        pool.revive_device(1, 5.0)         # failed -> free
        pool.resize(lease, 3, 6.0)         # re-grow over the revived device
        pool.revive_device(3, 7.0)
        pool.settle(10.0)
        audit = pool.audit(10.0)
        total = (audit["busy_device_seconds"] + audit["idle_device_seconds"]
                 + audit["failed_device_seconds"])
        assert total == pytest.approx(4 * 10.0)
        # Failed bucket: device 1 down [2, 5], device 3 down [3, 7].
        assert audit["failed_device_seconds"] == pytest.approx(3.0 + 4.0)
        # The revoked device stopped billing its owner at the crash.
        assert lease.device_seconds == pytest.approx(
            3 * 2.0        # 3 devices [0, 2]
            + 2 * 4.0      # 2 devices [2, 6]
            + 3 * 4.0)     # 3 devices [6, 10]

    def test_conservation_under_simultaneous_domain_wipe(self):
        # A correlated domain wipe fails several devices at the *same*
        # timestamp — some leased, some free — then revives them together.
        # The three-way split must still conserve exactly:
        # busy + idle + failed == capacity * elapsed.
        pool = DevicePool(6)
        lease_a = pool.acquire("serve", 2, 0.0)    # (0, 1)
        lease_b = pool.acquire("train", 3, 0.0)    # (2, 3, 4); 5 stays free
        for device_id in (1, 2, 5):                # rack spanning both leases
            pool.fail_device(device_id, 3.0)       # + a free device, at once
        for device_id in (1, 2, 5):
            pool.revive_device(device_id, 7.0)     # atomic repair
        pool.settle(12.0)
        audit = pool.audit(12.0)
        total = (audit["busy_device_seconds"] + audit["idle_device_seconds"]
                 + audit["failed_device_seconds"])
        assert total == pytest.approx(6 * 12.0)
        # Three devices dark over [3, 7], regardless of prior ownership.
        assert audit["failed_device_seconds"] == pytest.approx(3 * 4.0)
        # Each lease billed only its surviving devices during the outage.
        assert lease_a.device_seconds == pytest.approx(2 * 3.0 + 1 * 9.0)
        assert lease_b.device_seconds == pytest.approx(3 * 3.0 + 2 * 9.0)


class TestPoolTopology:
    def test_topology_must_cover_every_device(self):
        from repro.chaos import FailureDomainTopology

        topo = FailureDomainTopology.regular(2, 2)     # devices 0..3
        pool = DevicePool(4, topology=topo)
        assert pool.topology is topo
        with pytest.raises(ValueError, match="pool"):
            DevicePool(6, topology=topo)               # 4 and 5 uncovered

    def test_topology_optional(self):
        assert DevicePool(4).topology is None
