"""DevicePool lease invariants and device-second conservation."""

from __future__ import annotations

import pytest

from repro.runtime import DevicePool, LeaseError


class TestLeaseInvariants:
    def test_acquire_hands_out_lowest_free_ids(self):
        pool = DevicePool(4)
        lease = pool.acquire("a", 2)
        assert lease.device_ids == (0, 1)
        assert pool.free_ids == (2, 3)

    def test_no_double_lease(self):
        pool = DevicePool(4)
        pool.acquire("a", 2)
        with pytest.raises(LeaseError):
            pool.acquire("b", 2, ids=[1, 2])  # 1 is already held by "a"

    def test_free_count_never_negative(self):
        pool = DevicePool(4)
        lease = pool.acquire("a", 3)
        with pytest.raises(LeaseError):
            pool.acquire("b", 2)
        pool.resize(lease, 4, 1.0)
        assert pool.free_count == 0
        with pytest.raises(LeaseError):
            pool.resize(lease, 5, 2.0)

    def test_grow_takes_lowest_shrink_returns_highest(self):
        pool = DevicePool(6)
        lease = pool.acquire("a", 2)           # (0, 1)
        pool.resize(lease, 4, 1.0)
        assert lease.device_ids == (0, 1, 2, 3)
        gained, lost = pool.resize(lease, 1, 2.0)
        assert gained == () and lost == (1, 2, 3)
        assert lease.device_ids == (0,)        # prefix survives
        assert pool.free_ids == (1, 2, 3, 4, 5)

    def test_solo_lease_always_holds_a_prefix(self):
        # The property the golden serving traces rely on: a lease alone on
        # the pool always holds exactly [0..k), whatever the resize path.
        pool = DevicePool(8)
        lease = pool.acquire("router", 2)
        for step, size in enumerate((4, 1, 8, 3)):
            pool.resize(lease, size, float(step + 1))
            assert lease.device_ids == tuple(range(size))

    def test_release_frees_everything(self):
        pool = DevicePool(4)
        lease = pool.acquire("a", 3)
        pool.release(lease, 1.0)
        assert not lease.active
        assert pool.free_count == 4
        with pytest.raises(LeaseError):
            pool.resize(lease, 2, 2.0)
        with pytest.raises(LeaseError):
            pool.release(lease, 2.0)

    def test_foreign_lease_rejected(self):
        a, b = DevicePool(2), DevicePool(2)
        lease = a.acquire("x", 1)
        with pytest.raises(LeaseError):
            b.resize(lease, 2, 1.0)

    def test_explicit_ids_must_match_count(self):
        pool = DevicePool(4)
        with pytest.raises(ValueError):
            pool.acquire("a", 2, ids=[0])

    def test_zero_size_lease_allowed(self):
        # A preempted training job holds a zero-size lease until devices
        # come back; that must be representable.
        pool = DevicePool(2)
        lease = pool.acquire("job", 0)
        assert lease.size == 0 and pool.free_count == 2
        pool.resize(lease, 2, 1.0)
        assert lease.size == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DevicePool(0)
        with pytest.raises(ValueError):
            DevicePool([1, 1])
        pool = DevicePool(2)
        with pytest.raises(ValueError):
            pool.acquire("a", -1)
        lease = pool.acquire("a", 1)
        with pytest.raises(ValueError):
            pool.resize(lease, -2, 1.0)


class TestDeviceSecondAccounting:
    def test_lease_accrues_at_each_size(self):
        pool = DevicePool(8)
        lease = pool.acquire("a", 2, 0.0)
        pool.resize(lease, 4, 10.0)    # 2 devices for 10 s
        pool.resize(lease, 1, 15.0)    # 4 devices for 5 s
        pool.settle(20.0)              # 1 device for 5 s
        assert lease.device_seconds == pytest.approx(2 * 10 + 4 * 5 + 1 * 5)

    def test_time_cannot_run_backwards(self):
        pool = DevicePool(2)
        lease = pool.acquire("a", 1, 5.0)
        with pytest.raises(LeaseError):
            pool.resize(lease, 2, 4.0)

    def test_conservation_audit(self):
        pool = DevicePool(4)
        a = pool.acquire("a", 2, 0.0)
        b = pool.acquire("b", 1, 1.0)
        pool.resize(a, 3, 2.0)
        pool.release(b, 3.0)
        audit = pool.audit(10.0)
        assert audit["busy_device_seconds"] == pytest.approx(
            pool.device_seconds())
        assert (audit["busy_device_seconds"] + audit["idle_device_seconds"]
                == pytest.approx(4 * 10.0))

    def test_per_owner_attribution(self):
        pool = DevicePool(4)
        a = pool.acquire("train", 2, 0.0)
        pool.acquire("serve", 1, 0.0)
        pool.settle(8.0)
        assert pool.device_seconds("train") == pytest.approx(16.0)
        assert pool.device_seconds("serve") == pytest.approx(8.0)
        assert pool.device_seconds() == pytest.approx(24.0)
        pool.release(a, 8.0)
        # Released leases keep contributing their history.
        assert pool.device_seconds("train") == pytest.approx(16.0)
