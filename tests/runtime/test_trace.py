"""EventTrace buffering, sampling, and batched emission."""

from __future__ import annotations

import json
from io import StringIO

import numpy as np
import pytest

from repro.runtime import EventTrace, Runtime, read_trace
from repro.runtime.trace import open_trace


class TestBuffering:
    def test_lines_are_held_until_the_buffer_fills(self):
        fh = StringIO()
        trace = EventTrace(fh, buffer_lines=8)
        for i in range(7):
            trace.emit(float(i), i, "tick", "t")
        assert fh.getvalue() == ""  # nothing written yet
        trace.emit(7.0, 7, "tick", "t")
        assert len(fh.getvalue().splitlines()) == 8

    def test_close_flushes_and_is_idempotent(self):
        fh = StringIO()
        trace = EventTrace(fh, buffer_lines=1000)
        trace.emit(0.5, 0, "tick", "t", {"k": 1})
        trace.close()
        trace.close()
        lines = fh.getvalue().splitlines()
        assert json.loads(lines[0]) == {
            "t": 0.5, "seq": 0, "kind": "tick", "actor": "t", "data": {"k": 1}}
        assert not fh.closed  # caller-owned handle stays open

    def test_runtime_run_flushes_without_close(self):
        fh = StringIO()
        trace = EventTrace(fh, buffer_lines=1000)
        runtime = Runtime(trace=trace)
        runtime.at(1.0, lambda t: None, kind="ping", actor="p")
        runtime.run()
        assert len(fh.getvalue().splitlines()) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EventTrace(StringIO(), sample=0)
        with pytest.raises(ValueError):
            EventTrace(StringIO(), buffer_lines=0)


class TestSampling:
    def test_every_nth_event_is_kept_after_a_meta_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with EventTrace(path, sample=3) as trace:
            for i in range(10):
                trace.emit(float(i), i, "tick", "t")
        raw = [json.loads(line) for line in open(path)]
        assert raw[0] == {"meta": {"sample": 3}}
        assert [e["seq"] for e in raw[1:]] == [0, 3, 6, 9]
        # read_trace hides the meta line from consumers.
        assert [e["seq"] for e in read_trace(path)] == [0, 3, 6, 9]

    def test_sampling_counts_across_emit_and_emit_many(self):
        fh = StringIO()
        trace = EventTrace(fh, sample=4)
        trace.emit(0.0, 0, "tick", "t")          # kept (seen 0)
        trace.emit(1.0, 1, "tick", "t")          # dropped
        trace.emit_many(np.array([2.0, 3.0, 4.0, 5.0, 6.0]),
                        np.array([2, 3, 4, 5, 6]), "wave", "t")  # keeps 4
        trace.emit(7.0, 7, "tick", "t")          # dropped (seen 7)
        trace.emit(8.0, 8, "tick", "t")          # kept (seen 8)
        trace.close()
        seqs = [json.loads(line)["seq"] for line in fh.getvalue().splitlines()
                if "meta" not in json.loads(line)]
        assert seqs == [0, 4, 8]
        assert trace.events_seen == 9
        assert trace.events_written == 3


class TestEmitMany:
    def test_byte_identical_to_the_scalar_path(self):
        times = np.array([0.0012345, 2.0, 7.25, 1e-9])
        seqs = np.array([3, 4, 5, 6])
        scalar_fh, batch_fh = StringIO(), StringIO()
        scalar = EventTrace(scalar_fh)
        batch = EventTrace(batch_fh)
        for t, s in zip(times.tolist(), seqs.tolist()):
            scalar.emit(t, s, "wave", "sim")
        batch.emit_many(times, seqs, "wave", "sim")
        scalar.close()
        batch.close()
        assert batch_fh.getvalue() == scalar_fh.getvalue()

    def test_accepts_plain_sequences_and_empty_batches(self):
        fh = StringIO()
        trace = EventTrace(fh)
        trace.emit_many([], [], "wave", "sim")
        trace.emit_many([1.5, 2.5], [0, 1], "wave", "sim")
        trace.close()
        assert [json.loads(line)["t"]
                for line in fh.getvalue().splitlines()] == [1.5, 2.5]


class TestCrashDurability:
    def test_events_before_a_crash_reach_the_file(self, tmp_path):
        """An exception mid-run must not strand buffered events: the journal
        keeps everything up to and including the failing action, and the
        failing event carries the error in its payload."""
        path = str(tmp_path / "crash.jsonl")

        def boom(t):
            raise RuntimeError("injected failure")

        trace = EventTrace(path, buffer_lines=1000)
        runtime = Runtime(trace=trace)
        runtime.at(1.0, lambda t: None, kind="ok", actor="a")
        runtime.at(2.0, boom, kind="bad", actor="a")
        runtime.at(3.0, lambda t: None, kind="never", actor="a")
        with pytest.raises(RuntimeError, match="injected failure"):
            runtime.run()
        trace.close()

        events = read_trace(path)
        assert [e["kind"] for e in events] == ["ok", "bad"]
        assert events[1]["data"]["error"] == "RuntimeError: injected failure"

    def test_owned_trace_is_flushed_even_when_the_run_raises(self, tmp_path):
        # The open_trace contract used by every *_workload entry point:
        # the path-owned writer is closed (hence flushed) on the error path.
        path = str(tmp_path / "owned.jsonl")
        with pytest.raises(ValueError, match="sabotage"):
            with open_trace(path) as writer:
                runtime = Runtime(trace=writer)
                runtime.at(0.5, lambda t: None, kind="ok", actor="a")

                def fail(t):
                    raise ValueError("sabotage")

                runtime.at(1.0, fail, kind="bad", actor="a")
                runtime.run()
        events = read_trace(path)
        assert [e["kind"] for e in events] == ["ok", "bad"]
        assert "sabotage" in events[1]["data"]["error"]


class TestOpenTrace:
    def test_path_is_owned_and_instance_passes_through(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with open_trace(path) as writer:
            writer.emit(0.0, 0, "tick", "t")
        assert len(read_trace(path)) == 1  # closed (flushed) on exit

        keeper = EventTrace(StringIO(), sample=2)
        with open_trace(keeper) as writer:
            assert writer is keeper
        keeper.emit(0.0, 0, "tick", "t")  # still usable: caller owns it
        with open_trace(None) as writer:
            assert writer is None
