"""The discrete-event core: clock, queue ordering, cancellation, runtime."""

from __future__ import annotations

import io
import json

import pytest

from repro.runtime import EventQueue, EventTrace, Runtime, SimClock, read_trace


class TestSimClock:
    def test_advances_monotonically(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(1.5)  # same instant is fine
        assert clock.now == 1.5
        with pytest.raises(RuntimeError, match="backwards"):
            clock.advance(1.0)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda t: fired.append("b"))
        q.push(1.0, lambda t: fired.append("a"))
        q.push(3.0, lambda t: fired.append("c"))
        while (e := q.pop()) is not None:
            e.action(e.time)
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        q = EventQueue()
        events = [q.push(1.0, lambda t: None) for _ in range(5)]
        popped = [q.pop() for _ in range(5)]
        assert popped == events  # FIFO among simultaneous events

    def test_cancellation_is_invisible_to_pop(self):
        q = EventQueue()
        keep = q.push(1.0, lambda t: None)
        dead = q.push(0.5, lambda t: None)
        dead.cancel()
        assert len(q) == 1
        assert q.pop() is keep
        assert q.pop() is None

    def test_rejects_non_finite_times(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("inf"), lambda t: None)
        with pytest.raises(ValueError):
            q.push(float("nan"), lambda t: None)


class TestRuntime:
    def test_clock_follows_events(self):
        rt = Runtime()
        seen = []
        rt.at(2.0, lambda t: seen.append(rt.now))
        rt.at(1.0, lambda t: seen.append(rt.now))
        assert rt.run() == 2
        assert seen == [1.0, 2.0]
        assert rt.now == 2.0

    def test_actions_can_schedule_more_events(self):
        rt = Runtime()
        fired = []

        def chain(t):
            fired.append(t)
            if len(fired) < 3:
                rt.after(1.0, chain)

        rt.at(0.0, chain)
        rt.run()
        assert fired == [0.0, 1.0, 2.0]

    def test_same_instant_events_fire_after_queued_peers(self):
        rt = Runtime()
        order = []
        rt.at(1.0, lambda t: (order.append("first"),
                              rt.at(1.0, lambda t2: order.append("third"))))
        rt.at(1.0, lambda t: order.append("second"))
        rt.run()
        assert order == ["first", "second", "third"]

    def test_until_bound_is_inclusive(self):
        rt = Runtime()
        fired = []
        rt.at(1.0, lambda t: fired.append(t))
        rt.at(2.0, lambda t: fired.append(t))
        rt.run(until=1.0)
        assert fired == [1.0]
        rt.run()
        assert fired == [1.0, 2.0]

    def test_stop_ends_the_loop(self):
        rt = Runtime()
        fired = []
        rt.at(1.0, lambda t: (fired.append(t), rt.stop()))
        rt.at(2.0, lambda t: fired.append(t))
        rt.run()
        assert fired == [1.0]

    def test_stop_before_run_prevents_the_loop(self):
        # A process that drains during registration may stop the runtime
        # before run() is ever called; the loop must honor that.
        rt = Runtime()
        rt.at(1.0, lambda t: pytest.fail("must not fire"))
        rt.stop()
        assert rt.run() == 0

    def test_process_protocol_seeds_events(self):
        class Pinger:
            name = "pinger"

            def __init__(self):
                self.fired = []

            def start(self, runtime):
                runtime.at(0.5, lambda t: self.fired.append(t),
                           actor=self.name)

        rt = Runtime()
        ping = Pinger()
        rt.add(ping)
        rt.run()
        assert ping.fired == [0.5]

    def test_after_rejects_negative_delay(self):
        rt = Runtime()
        with pytest.raises(ValueError):
            rt.after(-1.0, lambda t: None)


class TestEventTrace:
    def test_journals_fired_events_as_jsonl(self):
        buf = io.StringIO()
        rt = Runtime(trace=EventTrace(buf))
        rt.at(1.0, lambda t: {"detail": 7}, kind="ping", actor="test")
        rt.at(2.0, lambda t: None, kind="pong", actor="test")
        rt.run()
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [ln["kind"] for ln in lines] == ["ping", "pong"]
        assert lines[0] == {"t": 1.0, "seq": 0, "kind": "ping",
                            "actor": "test", "data": {"detail": 7}}
        assert lines[1]["data"] == {}

    def test_cancelled_events_never_reach_the_trace(self):
        buf = io.StringIO()
        rt = Runtime(trace=EventTrace(buf))
        rt.at(1.0, lambda t: None, kind="dead").cancel()
        rt.at(2.0, lambda t: None, kind="live")
        rt.run()
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [ln["kind"] for ln in lines] == ["live"]

    def test_path_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "timeline.jsonl")
        with EventTrace(path) as trace:
            rt = Runtime(trace=trace)
            rt.at(0.25, lambda t: {"x": 1}, kind="k", actor="a")
            rt.run()
        events = read_trace(path)
        assert events == [{"t": 0.25, "seq": 0, "kind": "k", "actor": "a",
                           "data": {"x": 1}}]
