"""Scheduler-backend equivalence and reclamation under cancellation storms.

The calendar queue must be observably indistinguishable from the heap
oracle: same fired order, same survivors under heavy ETA-invalidation
(>50% of scheduled events cancelled), and neither backend may let dead
entries accumulate without bound — the slab recycles slots on cancel and
both indexes compact their stale entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import EventQueue, Runtime, batch_action
from repro.runtime.core import queue_backends

BACKENDS = queue_backends()


def _random_schedule(seed: int, n: int, span: float = 500.0):
    """(times, cancel_mask) with >50% of events marked for cancellation."""
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.0, span, size=n)
    cancel = rng.random(n) < 0.6
    return times, cancel


def _drain(queue: EventQueue):
    order = []
    while (event := queue.pop()) is not None:
        order.append((event.time, event.seq))
    return order


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fired_order_identical_under_cancellation_storm(self, seed):
        times, cancel = _random_schedule(seed, n=2000)
        orders = {}
        for backend in BACKENDS:
            q = EventQueue(backend=backend)
            events = [q.push(float(t), lambda t: None) for t in times]
            for event, dead in zip(events, cancel):
                if dead:
                    event.cancel()
            orders[backend] = _drain(q)
        assert orders["calendar"] == orders["heap"]
        fired = len(orders["heap"])
        assert fired == int((~cancel).sum())
        assert fired < len(times) // 2  # the storm really cancelled >50%

    def test_post_many_matches_push_loop_order(self):
        times, _ = _random_schedule(seed=3, n=500)
        action = lambda t: None  # noqa: E731
        for backend in BACKENDS:
            loop_q = EventQueue(backend=backend)
            for t in times:
                loop_q.push(float(t), action)
            bulk_q = EventQueue(backend=backend)
            bulk_q.post_many(times, action)
            assert _drain(bulk_q) == _drain(loop_q)

    def test_handle_cancellation_agrees_across_backends(self):
        times, cancel = _random_schedule(seed=4, n=1000)
        orders = {}
        for backend in BACKENDS:
            q = EventQueue(backend=backend)
            handles = q.post_many(times, lambda t: None)
            for h, dead in zip(handles.tolist(), cancel):
                if dead:
                    assert q.cancel_handle(h)
                    assert not q.handle_alive(h)
                    assert not q.cancel_handle(h)  # second cancel is a no-op
            orders[backend] = _drain(q)
        assert orders["calendar"] == orders["heap"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_interleaved_schedule_and_fire(self, backend):
        """Actions keep scheduling/cancelling while the loop runs."""
        rt = Runtime(queue_backend=backend)
        fired = []
        pending = []

        def tick(t):
            fired.append((t, "tick"))
            if pending:
                # Cancel the previous tick's doomed event (fires at
                # t + 0.5, i.e. after this tick) before it can go off.
                pending.pop().cancel()
            if t < 50.0:
                rt.after(1.0, tick)
                pending.append(
                    rt.after(1.5, lambda t2: fired.append((t2, "DOOM"))))

        rt.at(0.0, tick)
        rt.run()
        # Every doomed event was cancelled before its fire time.
        assert sum(1 for _, k in fired if k == "DOOM") == 0
        assert [t for t, k in fired if k == "tick"] == [float(i)
                                                        for i in range(51)]


class TestBoundedMemory:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cancellation_storm_reclaims_slots_and_index(self, backend):
        q = EventQueue(backend=backend)
        rng = np.random.default_rng(11)
        survivors = 0
        for wave in range(40):
            times = rng.uniform(wave * 10.0, wave * 10.0 + 1000.0, size=500)
            handles = q.post_many(times, lambda t: None)
            doomed = rng.random(len(handles)) < 0.9
            for h in handles[doomed].tolist():
                q.cancel_handle(h)
            survivors += int((~doomed).sum())
        stats = q.debug_stats()
        assert stats["live"] == survivors == len(q)
        # Slab capacity is a function of peak live events, not of the
        # 20k scheduled: with ~90% cancelled it must stay well below the
        # total scheduled count (power-of-two growth from 256).
        assert stats["slab_capacity"] < 20_000
        # Index structures compact dead entries instead of hoarding them.
        assert stats["index_entries"] <= 2 * survivors + 128

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_slab_slots_recycled_after_fire(self, backend):
        q = EventQueue(backend=backend)
        for round_ in range(50):
            q.post_many(np.linspace(round_, round_ + 0.9, 100),
                        lambda t: None)
            while q.pop() is not None:
                pass
        assert len(q) == 0
        # 50 rounds x 100 events reuse the same ~100 slots.
        assert q.debug_stats()["slab_capacity"] <= 256

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cancel_after_fire_is_harmless(self, backend):
        """A stale Event/handle must never kill the slot's new tenant."""
        q = EventQueue(backend=backend)
        first = q.push(1.0, lambda t: None)
        assert q.pop() is first
        # The slot is recycled by the next push; cancelling the fired
        # event must not touch it.
        second = q.push(2.0, lambda t: None)
        first.cancel()
        assert second.alive
        assert q.pop() is second


class TestBatchDispatchEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_runs_see_the_same_events_as_scalar_dispatch(self, backend):
        """Run fusion changes call granularity, never content or order."""
        rng = np.random.default_rng(21)
        arrivals = np.sort(rng.uniform(0.0, 100.0, size=1000))
        ticks = np.arange(0.0, 100.0, 5.0)

        def run_batched():
            rt = Runtime(queue_backend=backend)
            seen = []

            @batch_action
            def on_wave(times):
                seen.extend(times.tolist())

            rt.post_many(arrivals, on_wave, kind="arrival")
            rt.post_many(ticks, lambda t: seen.append(("tick", t)),
                         kind="tick")
            rt.run()
            return seen

        def run_scalar():
            rt = Runtime(queue_backend=backend)
            seen = []
            rt.post_many(arrivals, lambda t: seen.append(t), kind="arrival")
            rt.post_many(ticks, lambda t: seen.append(("tick", t)),
                         kind="tick")
            rt.run()
            return seen

        assert run_batched() == run_scalar()

    def test_batch_runs_identical_across_backends(self):
        rng = np.random.default_rng(22)
        arrivals = np.sort(rng.uniform(0.0, 60.0, size=800))

        def run(backend):
            rt = Runtime(queue_backend=backend)
            waves = []

            @batch_action
            def on_wave(times):
                waves.append(times.tolist())

            rt.post_many(arrivals, on_wave)
            rt.post_many(np.arange(0.5, 60.0, 2.0),
                         lambda t: waves.append(("tick", t)))
            rt.run()
            return waves

        assert run("calendar") == run("heap")
