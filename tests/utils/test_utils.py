"""Utilities: seeding, units, tables, validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    GB,
    MB,
    derive_rng,
    derive_seed,
    format_bytes,
    format_duration,
    format_table,
    power_of_two_like_sizes,
    vn_rng,
)
from repro.utils.seeding import data_order
from repro.utils.validation import check_positive, check_power_of_two_like, is_power_of_two_like


class TestSeeding:
    def test_same_coords_same_stream(self):
        a = vn_rng(0, 1, 2, 3).random(8)
        b = vn_rng(0, 1, 2, 3).random(8)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("coords", [(1, 1, 2, 3), (0, 2, 2, 3),
                                        (0, 1, 3, 3), (0, 1, 2, 4)])
    def test_any_coordinate_changes_stream(self, coords):
        base = vn_rng(0, 1, 2, 3).random(8)
        other = vn_rng(*coords).random(8)
        assert not np.array_equal(base, other)

    def test_derive_seed_stable(self):
        assert derive_seed(7, 1, 2) == derive_seed(7, 1, 2)
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)

    def test_data_order_is_permutation(self):
        order = data_order(0, 3, 100)
        np.testing.assert_array_equal(np.sort(order), np.arange(100))

    def test_data_order_changes_by_epoch(self):
        assert not np.array_equal(data_order(0, 0, 100), data_order(0, 1, 100))

    def test_domain_separation(self):
        # Same numeric coords under different domains must differ.
        a = derive_rng(0, 1, 5).random(4)
        b = derive_rng(0, 2, 5).random(4)
        assert not np.array_equal(a, b)


class TestUnits:
    @pytest.mark.parametrize("n,expected", [
        (512, "512B"),
        (2048, "2.00KB"),
        (int(104.5 * MB), "104.50MB"),
        (8 * GB, "8.00GB"),
    ])
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    def test_format_bytes_negative(self):
        assert format_bytes(-2048) == "-2.00KB"

    @pytest.mark.parametrize("s,expected", [
        (1.5, "1.50s"),
        (65, "1m05s"),
        (3700, "1h01m"),
    ])
    def test_format_duration(self, s, expected):
        assert format_duration(s) == expected


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["a", "bb"], [[1, 2], [30, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert "30" in lines[3]

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    @pytest.mark.parametrize("n", [1, 2, 4, 6, 12, 48, 192, 768, 3072, 1024])
    def test_power_of_two_like_accepts(self, n):
        assert is_power_of_two_like(n)
        check_power_of_two_like("b", n)

    @pytest.mark.parametrize("n", [0, -4, 5, 7, 9, 100, 1000])
    def test_power_of_two_like_rejects(self, n):
        assert not is_power_of_two_like(n)
        with pytest.raises(ValueError):
            check_power_of_two_like("b", n)

    def test_sizes_grid_matches_paper_examples(self):
        grid = power_of_two_like_sizes(1024)
        # Paper examples: 48, 192, 768 are midpoints on the grid.
        assert {48, 192, 768} <= set(grid)
        assert grid == sorted(grid)

    def test_sizes_respect_bounds(self):
        grid = power_of_two_like_sizes(256, min_size=32)
        assert min(grid) >= 32 and max(grid) <= 256

    def test_empty_grid(self):
        assert power_of_two_like_sizes(0) == []

    @given(st.integers(1, 10**6))
    def test_property_grid_members_validate(self, n):
        for s in power_of_two_like_sizes(min(n, 4096)):
            assert is_power_of_two_like(s)
