"""Devices, memory ledger, cluster, interconnect, and the perf model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.framework import get_workload
from repro.hardware import (
    DEVICE_SPECS,
    Cluster,
    Device,
    Interconnect,
    MemoryLedger,
    OutOfDeviceMemory,
    PerfModel,
    get_spec,
    ring_allreduce_time,
    simulate_step_memory,
)
from repro.utils.units import GB


class TestDeviceSpecs:
    def test_catalog_has_paper_testbed(self):
        assert set(DEVICE_SPECS) >= {"V100", "P100", "K80", "RTX2080Ti"}

    def test_v100_is_reference(self):
        assert get_spec("V100").compute_factor == 1.0
        assert get_spec("V100").memory_bytes == 16 * GB

    def test_speed_ordering(self):
        order = ["V100", "RTX2080Ti", "P100", "K80"]
        factors = [get_spec(t).compute_factor for t in order]
        assert factors == sorted(factors, reverse=True)

    def test_v100_4x_p100(self):
        # §5.1.2: "V100 GPUs are 4x as fast as P100 GPUs" for ResNet-50.
        assert get_spec("V100").compute_factor / get_spec("P100").compute_factor == 4.0

    def test_unknown_spec(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_spec("H100")


class TestDeviceMemory:
    def test_allocate_and_free(self):
        d = Device(get_spec("V100"), 0)
        d.allocate("activations", 8 * GB)
        assert d.memory.used == 8 * GB
        d.free("activations")
        assert d.memory.used == 0

    def test_oom_raises(self):
        d = Device(get_spec("RTX2080Ti"), 0)
        with pytest.raises(OutOfDeviceMemory, match="capacity"):
            d.allocate("activations", 12 * GB)

    def test_peak_tracking(self):
        ledger = MemoryLedger(capacity_bytes=100)
        ledger.allocate("a", 60)
        ledger.allocate("b", 30)
        ledger.free("a", 60)
        ledger.allocate("c", 10)
        assert ledger.peak == 90
        assert ledger.peak_by_category["a"] == 60

    def test_free_more_than_live_rejected(self):
        ledger = MemoryLedger(capacity_bytes=100)
        ledger.allocate("a", 10)
        with pytest.raises(ValueError):
            ledger.free("a", 20)

    def test_negative_alloc_rejected(self):
        ledger = MemoryLedger(capacity_bytes=100)
        with pytest.raises(ValueError):
            ledger.allocate("a", -1)

    def test_breakdown_and_reset(self):
        ledger = MemoryLedger(capacity_bytes=100)
        ledger.allocate("a", 10)
        ledger.allocate("b", 20)
        assert ledger.breakdown() == {"a": 10, "b": 20}
        ledger.reset()
        assert ledger.used == 0 and ledger.peak == 0


class TestCluster:
    def test_homogeneous(self):
        c = Cluster.homogeneous("V100", 4)
        assert len(c) == 4 and c.is_homogeneous
        assert c.counts() == {"V100": 4}

    def test_from_counts_heterogeneous(self):
        c = Cluster.from_counts({"V100": 2, "P100": 3})
        assert len(c) == 5 and not c.is_homogeneous
        assert c.counts() == {"V100": 2, "P100": 3}
        # ids grouped by sorted type name: P100 first.
        assert [d.spec.name for d in c.devices[:3]] == ["P100"] * 3

    def test_subset(self):
        c = Cluster.homogeneous("V100", 4)
        sub = c.subset([1, 3])
        assert len(sub) == 2
        assert {d.device_id for d in sub} == {1, 3}

    def test_subset_unknown_id(self):
        c = Cluster.homogeneous("V100", 2)
        with pytest.raises(KeyError):
            c.subset([5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_total_memory(self):
        c = Cluster.from_counts({"V100": 1, "K80": 1})
        assert c.total_memory() == 16 * GB + 12 * GB


class TestInterconnect:
    def test_single_worker_free(self):
        assert ring_allreduce_time(10**9, 1) == 0.0

    def test_cost_scales_with_bytes(self):
        a = ring_allreduce_time(10**8, 4)
        b = ring_allreduce_time(2 * 10**8, 4)
        assert b > a

    def test_nearly_flat_in_workers(self):
        """Ring all-reduce transfer cost approaches 2*bytes/bw, not linear in n."""
        small = ring_allreduce_time(10**9, 2, latency=0.0)
        large = ring_allreduce_time(10**9, 16, latency=0.0)
        assert large < small * 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_allreduce_time(-1, 2)
        with pytest.raises(ValueError):
            ring_allreduce_time(1, 0)
        with pytest.raises(ValueError):
            Interconnect(bandwidth=0)

    def test_allgather_zero_for_single(self):
        assert Interconnect().allgather_time(10**9, 1) == 0.0


class TestPerfModel:
    def setup_method(self):
        self.perf = PerfModel()
        self.wl = get_workload("resnet50_imagenet")

    def test_wave_time_affine_in_batch(self):
        v100 = get_spec("V100")
        t64 = self.perf.wave_time(self.wl, v100, 64)
        t128 = self.perf.wave_time(self.wl, v100, 128)
        t192 = self.perf.wave_time(self.wl, v100, 192)
        assert t128 - t64 == pytest.approx(t192 - t128, rel=1e-9)

    def test_device_speed_ratio_applies(self):
        v = self.perf.wave_time(self.wl, get_spec("V100"), 256)
        p = self.perf.wave_time(self.wl, get_spec("P100"), 256)
        # Compute part is 4x; the aggregation term is speed-independent.
        assert 3.4 < p / v < 4.1

    def test_throughput_anchor_v100_resnet(self):
        """Calibration: one V100 sustains ~1000 img/s on ResNet-50."""
        tput = self.perf.homogeneous_throughput(self.wl, get_spec("V100"),
                                                n_devices=1, global_batch=256,
                                                vn_per_device=1)
        assert 900 < tput < 1200

    def test_more_vns_cost_more_launch_overhead(self):
        spec = get_spec("V100")
        one = self.perf.device_step_time(self.wl, spec, [256])
        four = self.perf.device_step_time(self.wl, spec, [64] * 4)
        assert four > one  # same examples, more alpha

    def test_step_bottlenecked_on_slowest(self):
        waves = {get_spec("V100"): [[256]], get_spec("P100"): [[256]]}
        bd = self.perf.step_breakdown(self.wl, waves)
        p100_only = self.perf.device_step_time(self.wl, get_spec("P100"), [256])
        assert bd.compute + bd.update == pytest.approx(p100_only)

    def test_comm_zero_single_device(self):
        bd = self.perf.step_breakdown(self.wl, {get_spec("V100"): [[256]]})
        assert bd.comm == 0.0

    def test_empty_step_rejected(self):
        with pytest.raises(ValueError):
            self.perf.step_breakdown(self.wl, {})

    def test_zero_batch_wave_free(self):
        assert self.perf.wave_time(self.wl, get_spec("V100"), 0) == 0.0
        with pytest.raises(ValueError):
            self.perf.wave_time(self.wl, get_spec("V100"), -1)

    @given(st.integers(1, 16), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_throughput_monotone_in_devices(self, n1, n2):
        wl = get_workload("resnet50_imagenet")
        perf = PerfModel()
        if n1 == n2:
            return
        lo, hi = min(n1, n2), max(n1, n2)
        b = 8192
        t_lo = perf.homogeneous_step_time(wl, get_spec("V100"), lo, b, max(1, 32 // lo))
        t_hi = perf.homogeneous_step_time(wl, get_spec("V100"), hi, b, max(1, 32 // hi))
        assert t_hi <= t_lo * 1.01


class TestMemoryTimeline:
    def test_activations_dominate_at_peak(self):
        """Figure 6: activations are the bulk of peak memory for ResNet-50."""
        wl = get_workload("resnet50_imagenet")
        timeline = simulate_step_memory(wl, get_spec("RTX2080Ti"), [192])
        peaks = timeline.peak_by_category()
        assert peaks["activations"] > 0.6 * timeline.peak
        assert peaks["activations"] > 8 * peaks["parameters"]

    def test_grad_buffer_constant_across_waves(self):
        wl = get_workload("resnet50_imagenet")
        timeline = simulate_step_memory(wl, get_spec("V100"), [64] * 4)
        series = timeline.series("grad_buffer")
        assert len(set(series)) == 1  # never grows or shrinks

    def test_peak_within_capacity(self):
        wl = get_workload("resnet50_imagenet")
        spec = get_spec("V100")
        timeline = simulate_step_memory(wl, spec, [256])
        assert timeline.peak <= spec.memory_bytes

    def test_first_step_slower(self):
        wl = get_workload("resnet50_imagenet")
        timeline = simulate_step_memory(wl, get_spec("V100"), [128], num_steps=2,
                                        first_step_overhead=2.0)
        # The recorded times of step boundaries reflect the stretch.
        assert timeline.times[-1] > 0
