"""All-reduce vs parameter-server synchronization cost models."""

from __future__ import annotations

import pytest

from repro.hardware.sync_strategy import AllReduceStrategy, ParameterServerStrategy
from repro.utils.units import MB


class TestAllReduce:
    def test_single_worker_free(self):
        assert AllReduceStrategy().sync_time(100 * MB, 1) == 0.0

    def test_nearly_flat_in_workers(self):
        s = AllReduceStrategy(latency=0.0)
        assert s.sync_time(100 * MB, 32) < 2 * s.sync_time(100 * MB, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AllReduceStrategy(bandwidth=0)


class TestParameterServer:
    def test_single_worker_free(self):
        assert ParameterServerStrategy().sync_time(100 * MB, 1) == 0.0

    def test_scales_linearly_with_workers(self):
        s = ParameterServerStrategy(num_servers=1, latency=0.0)
        t2 = s.sync_time(100 * MB, 2)
        t8 = s.sync_time(100 * MB, 8)
        assert t8 == pytest.approx(4 * t2)

    def test_sharding_divides_load(self):
        one = ParameterServerStrategy(num_servers=1, latency=0.0)
        four = ParameterServerStrategy(num_servers=4, latency=0.0)
        assert four.sync_time(100 * MB, 8) == pytest.approx(
            one.sync_time(100 * MB, 8) / 4)

    def test_ring_wins_at_scale(self):
        """The architectural crossover: PS loses to the ring as workers grow."""
        ring = AllReduceStrategy()
        nbytes = 100 * MB
        # A single server loses immediately (its link carries n x the bytes).
        ps1 = ParameterServerStrategy(num_servers=1)
        assert ps1.crossover_workers(nbytes, ring) == 2
        # A well-sharded PS wins at small scale but still loses eventually.
        ps8 = ParameterServerStrategy(num_servers=8)
        crossover = ps8.crossover_workers(nbytes, ring)
        assert crossover > 2
        assert ring.sync_time(nbytes, crossover) < ps8.sync_time(nbytes, crossover)
        assert ps8.sync_time(nbytes, 2) < ring.sync_time(nbytes, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterServerStrategy(num_servers=0)
        with pytest.raises(ValueError):
            ParameterServerStrategy().sync_time(-1, 2)
        with pytest.raises(ValueError):
            ParameterServerStrategy().sync_time(1, 0)
