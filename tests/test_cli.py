"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _parse_device_counts, _parse_resize, build_parser, main


class TestParsing:
    def test_device_counts(self):
        assert _parse_device_counts("V100=2,P100=4") == {"V100": 2, "P100": 4}

    def test_device_counts_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_device_counts("V100")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_device_counts("V100=x")

    def test_resize(self):
        assert _parse_resize("2:4") == (2, 4)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_resize("2-4")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--workload", "nope",
                                       "--batch", "8", "--virtual-nodes", "2"])


class TestCommands:
    def test_plan(self, capsys):
        rc = main(["plan", "--workload", "mlp_synthetic", "--batch", "32",
                   "--virtual-nodes", "4", "--devices", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ExecutionPlan" in out and "predicted step" in out

    def test_train_with_resize(self, capsys):
        rc = main(["train", "--workload", "mlp_synthetic", "--batch", "32",
                   "--virtual-nodes", "4", "--devices", "2", "--epochs", "2",
                   "--dataset-size", "256", "--resize", "0:1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resized to 1 device(s)" in out
        assert "val acc" in out

    def test_profile(self, capsys):
        rc = main(["profile", "--workload", "resnet50_imagenet",
                   "--device-types", "V100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resnet50_imagenet on V100" in out
        assert "256" in out  # the V100 max batch appears on the grid

    def test_solve(self, capsys):
        rc = main(["solve", "--workload", "resnet50_imagenet", "--batch", "8192",
                   "--pool", "V100=2,P100=2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "B=8192" in out

    def test_simulate(self, capsys):
        rc = main(["simulate", "--jobs", "4", "--rate", "12", "--gpus", "4",
                   "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "virtualflow-wfs" in out and "static-priority" in out

    def test_gavel(self, capsys):
        rc = main(["gavel", "--jobs", "4", "--rate", "6", "--seed", "1",
                   "--pool", "V100=2,P100=4,K80=8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Gavel+HT" in out
