"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import _parse_device_counts, _parse_resize, build_parser, main


class TestParsing:
    def test_device_counts(self):
        assert _parse_device_counts("V100=2,P100=4") == {"V100": 2, "P100": 4}

    def test_device_counts_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_device_counts("V100")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_device_counts("V100=x")

    def test_resize(self):
        assert _parse_resize("2:4") == (2, 4)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_resize("2-4")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--workload", "nope",
                                       "--batch", "8", "--virtual-nodes", "2"])


# Minimal valid argv per subcommand, for cross-command parse coverage.
VALID_ARGS = {
    "train": ["train", "--workload", "mlp_synthetic", "--batch", "32",
              "--virtual-nodes", "4"],
    "infer": ["infer", "--workload", "mlp_synthetic", "--batch", "32",
              "--virtual-nodes", "4"],
    "serve": ["serve", "--workload", "mlp_synthetic",
              "--arrival-rate", "100"],
    "cosched": ["cosched", "--workload", "mlp_synthetic",
                "--arrival-rate", "100"],
    "chaos": ["chaos", "--workload", "mlp_synthetic",
              "--arrival-rate", "100"],
    "plan": ["plan", "--workload", "mlp_synthetic", "--batch", "32",
             "--virtual-nodes", "4"],
    "profile": ["profile", "--workload", "mlp_synthetic"],
    "solve": ["solve", "--workload", "mlp_synthetic", "--batch", "64",
              "--pool", "V100=2"],
    "simulate": ["simulate"],
    "gavel": ["gavel"],
}


class TestSubcommandParsing:
    """Every subcommand parses its minimal argv and rejects bad flags."""

    @pytest.mark.parametrize("command", sorted(VALID_ARGS))
    def test_minimal_argv_parses(self, command):
        args = build_parser().parse_args(VALID_ARGS[command])
        assert args.command == command

    @pytest.mark.parametrize("command", ["train", "infer", "serve", "cosched",
                                         "simulate"])
    def test_backend_flag_accepts_registered_names(self, command):
        for backend in ("reference", "fused"):
            args = build_parser().parse_args(
                VALID_ARGS[command] + ["--backend", backend])
            assert args.backend == backend

    @pytest.mark.parametrize("command", ["train", "infer", "serve", "cosched",
                                         "simulate"])
    def test_unknown_backend_rejected(self, command):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                VALID_ARGS[command] + ["--backend", "bogus"])

    def test_arena_flag_is_train_only(self):
        args = build_parser().parse_args(VALID_ARGS["train"] + ["--no-arena"])
        assert args.no_arena
        for command in ("infer", "serve", "cosched", "plan", "simulate"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(VALID_ARGS[command] + ["--no-arena"])

    @pytest.mark.parametrize("command", ["serve", "cosched", "chaos",
                                         "simulate"])
    def test_trace_out_accepted_on_runtime_commands(self, command):
        args = build_parser().parse_args(
            VALID_ARGS[command] + ["--trace-out", "timeline.jsonl"])
        assert args.trace_out == "timeline.jsonl"
        for other in ("train", "infer", "plan", "gavel"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    VALID_ARGS[other] + ["--trace-out", "x.jsonl"])

    def test_fused_backend_combines_with_no_arena(self):
        args = build_parser().parse_args(
            VALID_ARGS["train"] + ["--backend", "fused", "--no-arena"])
        assert args.backend == "fused" and args.no_arena

    @pytest.mark.parametrize("command,missing", [
        ("train", ["train", "--workload", "mlp_synthetic", "--batch", "32"]),
        ("train", ["train", "--batch", "32", "--virtual-nodes", "4"]),
        ("infer", ["infer", "--workload", "mlp_synthetic", "--batch", "32"]),
        ("serve", ["serve", "--workload", "mlp_synthetic"]),
        ("serve", ["serve", "--arrival-rate", "100"]),
        ("cosched", ["cosched", "--workload", "mlp_synthetic"]),
        ("cosched", ["cosched", "--arrival-rate", "100"]),
        ("solve", ["solve", "--workload", "mlp_synthetic", "--batch", "64"]),
    ])
    def test_missing_required_arguments_rejected(self, command, missing):
        with pytest.raises(SystemExit):
            build_parser().parse_args(missing)

    @pytest.mark.parametrize("argv", [
        ["train", "--workload", "mlp_synthetic", "--batch", "x",
         "--virtual-nodes", "4"],
        ["serve", "--workload", "mlp_synthetic", "--arrival-rate", "fast"],
        ["serve", "--workload", "mlp_synthetic", "--arrival-rate", "100",
         "--max-batch", "many"],
        ["simulate", "--rate", "fast"],
    ])
    def test_non_numeric_values_rejected(self, argv):
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv)

    @pytest.mark.parametrize("extra", [
        ["--arrival-rate", "0"],
        ["--arrival-rate", "-5"],
        ["--duration", "0"],
        ["--spike-duration", "-1"],
        ["--spike-factor", "0.5"],
        ["--max-wait", "-2"],
        ["--max-batch", "0"],
        ["--devices", "0"],
        ["--initial-devices", "-1"],
        ["--virtual-nodes", "0"],
        ["--requests", "0"],
        ["--slo-p99", "0"],
    ])
    def test_serve_out_of_range_values_rejected(self, extra):
        argv = ["serve", "--workload", "mlp_synthetic"]
        if "--arrival-rate" not in extra:
            argv += ["--arrival-rate", "100"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv + extra)

    @pytest.mark.parametrize("extra", [
        ["--arrival-rate", "0"],
        ["--spike-factor", "0.5"],
        ["--devices", "0"],
        ["--initial-serving", "0"],
        ["--train-jobs", "0"],
        ["--train-demand", "0"],
        ["--train-floor", "-1"],
        ["--resize-delay", "-1"],
        ["--slo-p99", "0"],
    ])
    def test_cosched_out_of_range_values_rejected(self, extra):
        argv = ["cosched", "--workload", "mlp_synthetic"]
        if "--arrival-rate" not in extra:
            argv += ["--arrival-rate", "100"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv + extra)

    def test_serve_zero_max_wait_allowed(self):
        args = build_parser().parse_args(
            VALID_ARGS["serve"] + ["--max-wait", "0"])
        assert args.max_wait == 0.0

    def test_serve_defaults(self):
        args = build_parser().parse_args(VALID_ARGS["serve"])
        assert args.autoscale is False
        assert args.max_batch >= 1
        assert args.slo_p99 > 0
        assert args.backend == "reference"

    def test_cosched_defaults(self):
        args = build_parser().parse_args(VALID_ARGS["cosched"])
        assert args.static is False
        assert args.devices == 8
        assert args.train_jobs >= 1
        assert args.slo_p99 > 0
        assert args.trace_out is None
        assert args.train_workload in ("resnet56_cifar10",)

    def test_chaos_defaults(self):
        args = build_parser().parse_args(VALID_ARGS["chaos"])
        assert args.crash_rate > 0          # chaos injects by default
        assert args.mttr > 0
        assert args.recovery == "migrate"
        assert args.chaos_seed is None      # falls back to --seed
        assert args.devices == 8            # shares the cosched flag set

    @pytest.mark.parametrize("extra", [
        ["--crash-rate", "-1"],
        ["--mttr", "0"],
        ["--straggler-rate", "-0.5"],
        ["--straggler-factor", "1.5"],
        ["--straggler-factor", "0"],
        ["--network-factor", "1"],
        ["--network-rate", "-1"],
        ["--retry-delay", "-0.1"],
        ["--recovery", "reboot"],
    ])
    def test_chaos_out_of_range_values_rejected(self, extra):
        with pytest.raises(SystemExit):
            build_parser().parse_args(VALID_ARGS["chaos"] + extra)

    def test_chaos_topology_flags_parse(self):
        args = build_parser().parse_args(VALID_ARGS["chaos"] + [
            "--topology", "racks=4x2,switches=2", "--correlated",
            "--wipe-level", "switch", "--derate-rate", "0.2",
            "--derate-floor", "0.6", "--derate-duration", "1.5"])
        assert args.topology == "racks=4x2,switches=2"
        assert args.correlated and args.wipe_level == "switch"
        assert args.wipe_rate is None       # implied 0.15 by --correlated
        assert args.derate_rate == 0.2

    @pytest.mark.parametrize("extra", [
        ["--wipe-rate", "-0.1"],
        ["--wipe-level", "pod"],
        ["--derate-rate", "-1"],
        ["--derate-floor", "0"],
        ["--derate-floor", "1.5"],
        ["--derate-duration", "0"],
    ])
    def test_chaos_topology_out_of_range_rejected(self, extra):
        with pytest.raises(SystemExit):
            build_parser().parse_args(VALID_ARGS["chaos"] + extra)

    @pytest.mark.parametrize("command", ["cosched", "chaos"])
    def test_admission_flags_parse(self, command):
        args = build_parser().parse_args(VALID_ARGS[command] + [
            "--shed-queue-depth", "32", "--shed-wait", "25", "--brownout"])
        assert args.shed_queue_depth == 32
        assert args.shed_wait == 25.0       # milliseconds on the CLI
        assert args.brownout

    @pytest.mark.parametrize("extra", [
        ["--shed-queue-depth", "0"],
        ["--shed-wait", "0"],
    ])
    def test_admission_out_of_range_rejected(self, extra):
        with pytest.raises(SystemExit):
            build_parser().parse_args(VALID_ARGS["cosched"] + extra)


class TestCommands:
    def test_plan(self, capsys):
        rc = main(["plan", "--workload", "mlp_synthetic", "--batch", "32",
                   "--virtual-nodes", "4", "--devices", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ExecutionPlan" in out and "predicted step" in out

    def test_train_with_resize(self, capsys):
        rc = main(["train", "--workload", "mlp_synthetic", "--batch", "32",
                   "--virtual-nodes", "4", "--devices", "2", "--epochs", "2",
                   "--dataset-size", "256", "--resize", "0:1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resized to 1 device(s)" in out
        assert "val acc" in out

    def test_serve_fixed(self, capsys):
        rc = main(["serve", "--workload", "mlp_synthetic",
                   "--arrival-rate", "200", "--duration", "1",
                   "--devices", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "requests served" in out and "latency p50 / p99" in out
        assert "fixed mapping" in out

    def test_serve_autoscaled_spike(self, capsys):
        rc = main(["serve", "--workload", "mlp_synthetic",
                   "--arrival-rate", "400", "--duration", "4",
                   "--spike-factor", "6", "--spike-duration", "1",
                   "--devices", "8", "--autoscale", "--slo-p99", "30",
                   "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "autoscaled" in out
        assert "remapped" in out  # the spike must move the mapping

    def test_cosched(self, capsys):
        rc = main(["cosched", "--workload", "mlp_synthetic",
                   "--arrival-rate", "400", "--duration", "4",
                   "--spike-factor", "5", "--spike-duration", "1",
                   "--devices", "8", "--initial-serving", "2",
                   "--resize-delay", "0.25", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "co-scheduled" in out and "training goodput" in out
        assert "harvested training budget" in out

    def test_cosched_static_partition(self, capsys):
        rc = main(["cosched", "--workload", "mlp_synthetic",
                   "--arrival-rate", "200", "--duration", "2",
                   "--spike-factor", "2", "--spike-duration", "0.5",
                   "--devices", "4", "--initial-serving", "2", "--static",
                   "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "static partition" in out
        assert "harvested" not in out

    def test_chaos(self, capsys):
        rc = main(["chaos", "--workload", "mlp_synthetic",
                   "--arrival-rate", "300", "--duration", "2",
                   "--spike-factor", "2", "--spike-duration", "0.5",
                   "--devices", "8", "--initial-serving", "2",
                   "--resize-delay", "0.25", "--seed", "1",
                   "--crash-rate", "1.0", "--mttr", "1.0",
                   "--chaos-seed", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "random plan (seed 9" in out        # the plan is printed
        assert "chaos crashes / revives" in out    # the report gained rows
        assert "chaos crash" in out                # the timeline names events
        assert "+ chaos" in out                    # mode line is tagged

    def test_chaos_correlated_topology(self, capsys):
        rc = main(["chaos", "--workload", "mlp_synthetic",
                   "--arrival-rate", "300", "--duration", "2",
                   "--devices", "8", "--initial-serving", "2",
                   "--resize-delay", "0.25", "--seed", "1",
                   "--crash-rate", "0.2", "--mttr", "0.8",
                   "--topology", "racks=4x2", "--correlated",
                   "--derate-rate", "0.5", "--chaos-seed", "3",
                   "--shed-queue-depth", "32", "--shed-wait", "25",
                   "--brownout"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 rack(s) x 2" in out              # topology in the plan
        assert "x speed" in out                    # a derate step is drawn
        assert "restored" in out                   # ... and self-clears
        assert "chaos derate events" in out        # the report gained a row
        assert "requests shed" in out              # admission row appears

    def test_chaos_correlated_needs_topology(self, capsys):
        rc = main(["chaos", "--workload", "mlp_synthetic",
                   "--arrival-rate", "100", "--correlated"])
        assert rc == 2
        assert "--topology" in capsys.readouterr().err

    def test_chaos_topology_must_cover_devices(self, capsys):
        rc = main(["chaos", "--workload", "mlp_synthetic",
                   "--arrival-rate", "100", "--devices", "8",
                   "--topology", "racks=2x2"])
        assert rc == 2
        assert "devices" in capsys.readouterr().err

    def test_serve_trace_out_writes_timeline(self, capsys, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        rc = main(["serve", "--workload", "mlp_synthetic",
                   "--arrival-rate", "200", "--duration", "1",
                   "--devices", "2", "--seed", "1", "--trace-out", path])
        assert rc == 0
        from repro.runtime import read_trace

        events = read_trace(path)
        assert events and {"admit", "dispatch", "complete"} <= {
            e["kind"] for e in events}
        assert "event timeline written" in capsys.readouterr().out

    def test_simulate_trace_out_writes_timeline(self, capsys, tmp_path):
        path = str(tmp_path / "sim.jsonl")
        rc = main(["simulate", "--jobs", "4", "--rate", "12", "--gpus", "4",
                   "--seed", "1", "--trace-out", path])
        assert rc == 0
        from repro.runtime import read_trace

        events = read_trace(path)
        assert events and "arrival" in {e["kind"] for e in events}

    def test_profile(self, capsys):
        rc = main(["profile", "--workload", "resnet50_imagenet",
                   "--device-types", "V100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "resnet50_imagenet on V100" in out
        assert "256" in out  # the V100 max batch appears on the grid

    def test_solve(self, capsys):
        rc = main(["solve", "--workload", "resnet50_imagenet", "--batch", "8192",
                   "--pool", "V100=2,P100=2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "B=8192" in out

    def test_simulate(self, capsys):
        rc = main(["simulate", "--jobs", "4", "--rate", "12", "--gpus", "4",
                   "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "virtualflow-wfs" in out and "static-priority" in out

    def test_gavel(self, capsys):
        rc = main(["gavel", "--jobs", "4", "--rate", "6", "--seed", "1",
                   "--pool", "V100=2,P100=4,K80=8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Gavel+HT" in out


TENANT_SPEC = "prem:class=premium,weight=4,quota=250;batch:share=2"


class TestTenancyFlags:
    @pytest.mark.parametrize("command", ["serve", "cosched", "chaos"])
    def test_tenancy_flags_parse(self, command):
        args = build_parser().parse_args(VALID_ARGS[command] + [
            "--tenants", TENANT_SPEC, "--journal", "j.jsonl",
            "--dispatcher", "fifo"])
        assert args.tenants == TENANT_SPEC
        assert args.journal == "j.jsonl"
        assert args.dispatcher == "fifo"

    @pytest.mark.parametrize("command", ["serve", "cosched", "chaos"])
    def test_tenancy_defaults(self, command):
        args = build_parser().parse_args(VALID_ARGS[command])
        assert args.tenants is None
        assert args.journal is None
        assert args.dispatcher == "wfq"

    def test_unknown_dispatcher_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                VALID_ARGS["serve"] + ["--dispatcher", "lifo"])

    def test_audit_requires_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit"])
        args = build_parser().parse_args(
            ["audit", "--journal", "j.jsonl", "--json"])
        assert args.journal == "j.jsonl" and args.json

    def test_journal_without_tenants_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(VALID_ARGS["serve"] + ["--journal", "j.jsonl"])
        assert exc.value.code == 2
        assert "--tenants" in capsys.readouterr().err

    def test_dispatcher_without_tenants_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(VALID_ARGS["serve"] + ["--dispatcher", "fifo"])
        assert exc.value.code == 2
        assert "--tenants" in capsys.readouterr().err

    def test_bad_tenant_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(VALID_ARGS["serve"] + ["--tenants", "prem:speed=4"])
        assert exc.value.code == 2
        assert "unknown key" in capsys.readouterr().err


class TestTenancyCommands:
    def test_serve_with_tenants_prints_tenant_table(self, capsys, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        rc = main(["serve", "--workload", "mlp_synthetic",
                   "--arrival-rate", "300", "--duration", "1",
                   "--devices", "2", "--seed", "5",
                   "--tenants", TENANT_SPEC, "--journal", journal])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-tenant SLO attainment" in out
        assert "prem" in out and "batch" in out
        assert "request journal written to" in out

    def test_audit_reproduces_the_serve_numbers(self, capsys, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        assert main(["serve", "--workload", "mlp_synthetic",
                     "--arrival-rate", "300", "--duration", "1",
                     "--devices", "2", "--seed", "5",
                     "--tenants", TENANT_SPEC, "--journal", journal]) == 0
        serve_out = capsys.readouterr().out
        assert main(["audit", "--journal", journal]) == 0
        audit_out = capsys.readouterr().out
        assert "journal audit:" in audit_out and "wfq dispatcher" in audit_out
        # The audit table carries the exact attainment rows the live run
        # printed (row order may differ; the numbers may not).
        for line in serve_out.splitlines():
            if line.startswith(("prem ", "batch ")):
                assert line in audit_out

    def test_audit_json_mode(self, capsys, tmp_path):
        import json

        journal = str(tmp_path / "journal.jsonl")
        assert main(["serve", "--workload", "mlp_synthetic",
                     "--arrival-rate", "300", "--duration", "1",
                     "--devices", "2", "--seed", "5",
                     "--tenants", TENANT_SPEC, "--journal", journal]) == 0
        capsys.readouterr()
        assert main(["audit", "--journal", journal, "--json"]) == 0
        audit = json.loads(capsys.readouterr().out)
        assert audit["dispatcher"] == "wfq"
        assert set(audit["tenants"]) == {"prem", "batch"}

    def test_audit_missing_journal_fails_cleanly(self, capsys, tmp_path):
        rc = main(["audit", "--journal", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot read journal" in capsys.readouterr().err

    def test_audit_rejects_a_non_journal_trace(self, capsys, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main(["serve", "--workload", "mlp_synthetic",
                     "--arrival-rate", "200", "--duration", "1",
                     "--devices", "2", "--seed", "1",
                     "--trace-out", path]) == 0
        capsys.readouterr()
        rc = main(["audit", "--journal", path])
        assert rc == 2
        assert "malformed journal" in capsys.readouterr().err

    def test_cosched_with_tenants_journals_the_shared_runtime(
            self, capsys, tmp_path):
        journal = str(tmp_path / "journal.jsonl")
        rc = main(["cosched", "--workload", "mlp_synthetic",
                   "--arrival-rate", "300", "--duration", "2",
                   "--spike-factor", "2", "--spike-duration", "0.5",
                   "--devices", "4", "--initial-serving", "2",
                   "--seed", "1", "--tenants", TENANT_SPEC,
                   "--journal", journal])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-tenant SLO attainment" in out
        assert "request journal written to" in out
        capsys.readouterr()
        assert main(["audit", "--journal", journal]) == 0
        assert "journal audit:" in capsys.readouterr().out
