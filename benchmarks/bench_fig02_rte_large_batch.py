"""Figure 2: virtual nodes unlock a better batch size on one GPU.

Paper setup: BERT-LARGE fine-tuned on RTE on a single RTX 2080 Ti.  Vanilla
TensorFlow can only fit batch size 4; VirtualFlow reaches batch 16 via 4
virtual nodes and lands at a higher final accuracy (+7 points in the paper).

The RTE stand-in is a noisy, weak-signal text task (RTE is the hardest GLUE
task, with ~2.5k examples and near-chance baselines).  With the once-tuned
learning rate, a batch of 4 is visibly unstable, while batch 16 — only
reachable through virtual nodes on this device — converges far better.
"""

from __future__ import annotations

import numpy as np

from _common import report, save_series
from repro import TrainerConfig, VirtualFlowTrainer
from repro.data.datasets import synthetic_text_dataset
from repro.framework import get_workload
from repro.hardware import get_spec

EPOCHS = 10
SEED = 17
LR = 5e-3  # tuned once; too hot for batch 4, right for batch 16


def _rte_dataset():
    return synthetic_text_dataset(n=1024, seq_len=12, vocab_size=64,
                                  num_classes=2, seed=SEED, signal_prob=0.4,
                                  label_noise=0.25, name="rte_hard")


def _train(batch: int, vns: int):
    trainer = VirtualFlowTrainer(
        TrainerConfig(workload="bert_large_glue", global_batch_size=batch,
                      num_virtual_nodes=vns, device_type="RTX2080Ti",
                      num_devices=1, dataset_size=1024, seed=SEED,
                      learning_rate=LR),
        dataset=_rte_dataset(),
    )
    trainer.train(epochs=EPOCHS)
    return trainer


def _final(trainer) -> float:
    """Mean of the last three epochs (smooths single-epoch luck)."""
    return float(np.mean([h.val_accuracy for h in trainer.history[-3:]]))


def _run():
    wl = get_workload("bert_large_glue")
    max_batch = wl.footprint.max_batch(get_spec("RTX2080Ti").memory_bytes,
                                       wl.optimizer_slots, grad_buffer=False)
    tf = _train(batch=max_batch, vns=1)
    vf = _train(batch=16, vns=4)
    return max_batch, tf, vf


def test_fig02_larger_batch_wins_on_one_gpu(benchmark):
    max_batch, tf, vf = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert max_batch == 4  # calibration anchor (Fig 18)
    rows = [
        [f"TensorFlow (BS {max_batch})", f"{_final(tf):.4f}"],
        ["VirtualFlow (BS 16, 4 VNs)", f"{_final(vf):.4f}"],
    ]
    report("fig02_rte_large_batch", ["configuration", "final val acc"], rows,
           title="Fig 2: BERT-LARGE/RTE fine-tuning on a single RTX 2080 Ti",
           notes="paper: batch 16 via virtual nodes beats batch 4 by ~7 points")
    save_series("fig02_curves", "epoch tf_bs4 vf_bs16", [
        f"{i} {a.val_accuracy:.4f} {b.val_accuracy:.4f}"
        for i, (a, b) in enumerate(zip(tf.history, vf.history))
    ])
    # Paper shape: the previously inaccessible batch size reaches a
    # meaningfully higher accuracy on the same hardware.
    assert _final(vf) > _final(tf) + 0.05
