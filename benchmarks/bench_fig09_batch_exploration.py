"""Figure 9: batch-size exploration on a single GPU via virtual nodes.

Paper: BERT-LARGE fine-tuned on RTE / SST-2 / MRPC for 10 epochs on one
RTX 2080 Ti.  Vanilla TensorFlow is stuck at batch 4; virtual nodes expand
the space to [4, 8, 16, 32, 64, 128], each with its own trajectory.
"""

from __future__ import annotations


from _common import report, save_series
from repro import TrainerConfig, VirtualFlowTrainer
from repro.data.datasets import synthetic_text_dataset

EPOCHS = 8
BATCHES = (4, 8, 16, 32, 64, 128)
TASKS = {"RTE": 201, "SST-2": 202, "MRPC": 203}


def _train(task_seed: int, batch: int):
    dataset = synthetic_text_dataset(n=1024, seq_len=12, vocab_size=64,
                                     num_classes=2, seed=task_seed,
                                     signal_prob=0.55, label_noise=0.12,
                                     name="glue_explore")
    trainer = VirtualFlowTrainer(
        TrainerConfig(workload="bert_large_glue", global_batch_size=batch,
                      num_virtual_nodes=max(1, batch // 4),
                      device_type="RTX2080Ti", num_devices=1,
                      dataset_size=1024, seed=11, learning_rate=1e-3),
        dataset=dataset,
    )
    trainer.train(epochs=EPOCHS)
    return [h.val_accuracy for h in trainer.history]


def _run():
    return {task: {b: _train(seed, b) for b in BATCHES}
            for task, seed in TASKS.items()}


def test_fig09_batch_exploration(benchmark):
    curves = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for task in TASKS:
        for b in BATCHES:
            rows.append([task, b, max(1, b // 4),
                         f"{curves[task][b][-1]:.4f}",
                         f"{max(curves[task][b]):.4f}"])
    report("fig09_batch_exploration",
           ["task", "batch", "virtual nodes", "final acc", "best acc"], rows,
           title="Fig 9: batch exploration on one RTX 2080 Ti "
                 "(vanilla limit: batch 4)")
    for task in TASKS:
        save_series(f"fig09_curves_{task.lower().replace('-', '')}",
                    "epoch " + " ".join(f"bs{b}" for b in BATCHES), [
                        " ".join([str(e)] + [f"{curves[task][b][e]:.4f}"
                                             for b in BATCHES])
                        for e in range(EPOCHS)
                    ])
    # Shape 1: trajectories genuinely differ across batch sizes.
    for task in TASKS:
        finals = [round(curves[task][b][-1], 6) for b in BATCHES]
        assert len(set(finals)) > 1
    # Shape 2: somewhere, a previously inaccessible batch (>4) is the best
    # choice — the reason exploration matters (Fig 2 / Fig 9 RTE).
    wins = 0
    for task in TASKS:
        best_batch = max(BATCHES, key=lambda b: max(curves[task][b]))
        if best_batch > 4:
            wins += 1
    assert wins >= 1
