"""Figure 7 (right): even vs uneven batch splits on uneven resources.

2 V100s + 2 P100s, ResNet-50, global batch 8192.  The even 2048:2048 split
bottlenecks on the P100s; the uneven 3072:1024 split shortens the step by
~44% in the paper.  The heterogeneous solver should find a configuration at
least as good as the hand-picked uneven one.
"""

from __future__ import annotations


from _common import report
from repro.hetero import HeterogeneousSolver, TypeAssignment
from repro.profiler import OfflineProfiler


def _run():
    store = OfflineProfiler(seed=0).profile_all("resnet50_imagenet",
                                                ["V100", "P100"])
    solver = HeterogeneousSolver("resnet50_imagenet", store)
    even = solver.predict_assignment([
        TypeAssignment("V100", 2, 2048, 8), TypeAssignment("P100", 2, 2048, 8)])
    uneven = solver.predict_assignment([
        TypeAssignment("V100", 2, 3072, 16), TypeAssignment("P100", 2, 1024, 4)])
    best = solver.solve({"V100": 2, "P100": 2}, 8192)
    return even, uneven, best


def test_fig07_uneven_split(benchmark):
    even, uneven, best = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        ["even 2048:2048", f"{even.predicted_step_time:.2f}",
         f"{even.predicted_throughput:.0f}"],
        ["uneven 3072:1024", f"{uneven.predicted_step_time:.2f}",
         f"{uneven.predicted_throughput:.0f}"],
        ["solver output", f"{best.predicted_step_time:.2f}",
         f"{best.predicted_throughput:.0f}"],
    ]
    report("fig07_uneven_split", ["configuration", "step time (s)", "img/s"],
           rows, title="Fig 7 (right): 2xV100 + 2xP100, ResNet-50, batch 8192",
           notes="paper: the uneven split gives a ~44% shorter step time")
    saving = 1 - uneven.predicted_step_time / even.predicted_step_time
    assert 0.30 < saving < 0.60  # paper: 44%
    assert best.predicted_step_time <= uneven.predicted_step_time * 1.001
