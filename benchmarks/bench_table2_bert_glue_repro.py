"""Table 2: BERT-BASE fine-tuning reproducibility across 3 GLUE tasks.

Paper: with the batch fixed at 64 (which does not fit in one V100 without
virtual nodes), VirtualFlow reproduces the target accuracy for QNLI, SST-2,
and CoLA on 1, 2, 4, and 8 GPUs using 8, 4, 2, and 1 virtual nodes per GPU.
The total virtual node count is 8 in every row, so our reproduction is
bit-exact across rows — stronger than the paper's +/-0.2%.
"""

from __future__ import annotations


from _common import report
from repro import TrainerConfig, VirtualFlowTrainer
from repro.data.datasets import synthetic_text_dataset
from repro.framework import get_workload
from repro.hardware import get_spec

EPOCHS = 6
BATCH = 64
TOTAL_VNS = 8
TASKS = {"QNLI": 101, "SST-2": 102, "CoLA": 103}  # task name -> dataset seed
GPU_COUNTS = (1, 2, 4, 8)


def _dataset(seed: int):
    return synthetic_text_dataset(n=1024, seq_len=12, vocab_size=64,
                                  num_classes=2, seed=seed,
                                  name="synthetic_glue")


def _train(task_seed: int, num_devices: int):
    trainer = VirtualFlowTrainer(
        TrainerConfig(workload="bert_base_glue", global_batch_size=BATCH,
                      num_virtual_nodes=TOTAL_VNS, num_devices=num_devices,
                      dataset_size=1024, seed=5),
        dataset=_dataset(task_seed),
    )
    trainer.train(epochs=EPOCHS)
    return trainer.history[-1].val_accuracy


def _run():
    return {
        task: {n: _train(seed, n) for n in GPU_COUNTS}
        for task, seed in TASKS.items()
    }


def test_table2_bert_glue_reproducibility(benchmark):
    accs = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for n in GPU_COUNTS:
        rows.append([n, BATCH, TOTAL_VNS // n] +
                    [f"{accs[t][n]:.4f}" for t in TASKS])
    rows.append(["target", BATCH, "-"] +
                [f"{accs[t][8]:.4f}" for t in TASKS])
    report("table2_bert_glue", ["GPUs", "BS", "VN/GPU"] + list(TASKS), rows,
           title="Table 2: BERT-BASE fine-tuning, batch fixed at 64",
           notes="paper targets: QNLI 90.90, SST-2 91.97, CoLA 82.36 "
                 "(reproduced within +/-0.2% on 1-8 GPUs)")
    # Batch 64 genuinely does not fit one V100 in a single wave.
    wl = get_workload("bert_base_glue")
    assert wl.footprint.max_batch(get_spec("V100").memory_bytes,
                                  wl.optimizer_slots) < 64
    # Identical final accuracy on every cluster size, per task.
    for task in TASKS:
        values = {accs[task][n] for n in GPU_COUNTS}
        assert len(values) == 1, f"{task}: accuracies differ across GPUs"
        assert accs[task][1] > 0.7  # the tasks actually converge
