"""Event-core throughput: legacy heap loop vs calendar queue + slab + batching.

The discrete-event core is the substrate every simulated result in this repo
runs on, and at serving rates a single experiment is millions of events.
This benchmark measures the core the way the router actually drives it — a
1M-request open-loop Poisson replay with periodic admission/telemetry ticks
— and prices the rewrite against the **pre-PR core embedded verbatim below**
(pure-Python ``Event`` objects on a ``heapq``, one scalar action call per
event, O(n) ``__len__``), driven in pre-PR idiom: a ``push`` loop to post,
``percentile()`` re-sorting the latency window at every tick.

The current core runs the same workload three ways:

* **fast / calendar** — ``post_many`` arrival waves, a ``batch_action``
  arrival handler receiving whole same-kind runs as numpy arrays, the
  calendar-queue scheduler, and :class:`~repro.telemetry.StreamingHistogram`
  telemetry (O(1) insert, O(bins) quantile);
* **fast / heap** — identical driver on the reference heap index, isolating
  how much of the win is batching/slab vs the calendar scheduler;
* **elastic trace** — the fig11/12-style 20-job simulation end-to-end under
  both backends, asserting both fire the identical schedule.

Both sides fire the identical ``(time, seq)`` event sequence — equivalence
is pinned by ``tests/runtime/test_queue_backends.py`` and the golden-trace
suite; this file is purely about wall clock.  Results persist as
``results/runtime_throughput.txt`` and ``results/BENCH_runtime_throughput
.json``.  ``--smoke`` runs a small replay with an absolute events/sec floor
(CI breakage + gross-regression detection).
"""

from __future__ import annotations

import argparse
import heapq
import os
import sys
import time
from collections import deque
from typing import Dict, List, Optional

import numpy as np

from _common import report, save_bench_json
from repro.elastic import ElasticWFSScheduler, generate_trace
from repro.elastic.simulator import TrainingClusterProcess
from repro.runtime import DevicePool, Runtime, batch_action
from repro.telemetry import StreamingHistogram, percentile

# Replay geometry: ~20k req/s for ~50 simulated seconds, ticks frequent
# enough that telemetry queries interleave with arrival runs.
REQUESTS = 1_000_000
ARRIVAL_RATE = 20_000.0
TICK_EVERY = 0.05
WINDOW = 512            # latency observations the legacy tick re-sorts

SMOKE_REQUESTS = 20_000
# Absolute floor for the fast path in --smoke: generous against machine
# noise (the fast path clears it by well over an order of magnitude), tight
# enough that falling back to per-event dispatch would trip it.
SMOKE_FLOOR_EPS = 200_000.0


# --------------------------------------------------------------------------
# The pre-PR event core, embedded verbatim (sans docstrings/trace wiring) so
# the baseline cannot silently inherit later optimizations.
# --------------------------------------------------------------------------

class _LegacyEvent:
    __slots__ = ("time", "seq", "kind", "actor", "action", "_alive")

    def __init__(self, time, seq, kind, actor, action):
        self.time = time
        self.seq = seq
        self.kind = kind
        self.actor = actor
        self.action = action
        self._alive = True

    @property
    def alive(self):
        return self._alive

    def cancel(self):
        self._alive = False

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class _LegacyEventQueue:
    def __init__(self):
        self._heap: List[_LegacyEvent] = []
        self._seq = 0

    def __len__(self):
        return sum(1 for e in self._heap if e.alive)

    def push(self, time, action, *, kind="event", actor="runtime"):
        if time != time or time in (float("inf"), float("-inf")):
            raise ValueError(f"event time must be finite, got {time!r}")
        event = _LegacyEvent(time, self._seq, kind, actor, action)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def peek(self):
        while self._heap and not self._heap[0].alive:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def pop(self):
        event = self.peek()
        if event is not None:
            heapq.heappop(self._heap)
        return event


class _LegacyRuntime:
    def __init__(self):
        self._now = 0.0
        self.queue = _LegacyEventQueue()
        self._stopped = False
        self.events_processed = 0

    @property
    def now(self):
        return self._now

    def at(self, time, action, *, kind="event", actor="runtime"):
        return self.queue.push(time, action, kind=kind, actor=actor)

    def after(self, delay, action, *, kind="event", actor="runtime"):
        return self.queue.push(self._now + delay, action, kind=kind,
                               actor=actor)

    def run(self, until=None):
        processed = 0
        while not self._stopped:
            event = self.queue.peek()
            if event is None or (until is not None and event.time > until):
                break
            self.queue.pop()
            if event.time < self._now:
                raise RuntimeError("clock cannot run backwards")
            self._now = event.time
            event.action(event.time)
            processed += 1
            self.events_processed += 1
        return processed


# --------------------------------------------------------------------------
# The serving replay, pre-PR idiom vs current idiom.
# --------------------------------------------------------------------------

def _arrival_times(n: int, rate: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate, size=n))


def _latencies(n: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=-4.0, sigma=0.6, size=n)


def run_legacy_replay(times: np.ndarray, lats: np.ndarray,
                      tick_every: float) -> Dict[str, float]:
    """Pre-PR idiom: scalar push loop, per-event dispatch, re-sort per tick."""
    rt = _LegacyRuntime()
    window: deque = deque(maxlen=WINDOW)
    state = {"i": 0, "p99": 0.0}
    lat_list = lats.tolist()

    def on_arrival(t: float) -> None:
        i = state["i"]
        state["i"] = i + 1
        window.append(lat_list[i])

    def on_tick(t: float) -> None:
        if window:
            state["p99"] = percentile(list(window), 99)
        if state["i"] < len(lat_list):
            rt.after(tick_every, on_tick, kind="tick", actor="scaler")

    for t in times.tolist():
        rt.at(t, on_arrival, kind="arrival", actor="source")
    rt.after(tick_every, on_tick, kind="tick", actor="scaler")
    t0 = time.perf_counter()
    processed = rt.run()
    wall = time.perf_counter() - t0
    return {"events": processed, "wall_s": wall,
            "events_per_s": processed / wall, "p99": state["p99"]}


def run_fast_replay(times: np.ndarray, lats: np.ndarray, tick_every: float,
                    backend: Optional[str]) -> Dict[str, float]:
    """Current idiom: one post_many wave, batched dispatch, streaming p99."""
    rt = Runtime(queue_backend=backend)
    hist = StreamingHistogram()
    state = {"i": 0, "p99": 0.0}

    @batch_action
    def on_arrivals(fire_times: np.ndarray) -> None:
        i = state["i"]
        state["i"] = i + len(fire_times)
        hist.observe_many(lats[i:state["i"]])

    def on_tick(t: float) -> None:
        if len(hist):
            state["p99"] = hist.percentile(99)
        if state["i"] < len(lats):
            rt.after(tick_every, on_tick, kind="tick", actor="scaler")

    rt.post_many(times, on_arrivals, kind="arrival", actor="source")
    rt.after(tick_every, on_tick, kind="tick", actor="scaler")
    t0 = time.perf_counter()
    processed = rt.run()
    wall = time.perf_counter() - t0
    return {"events": processed, "wall_s": wall,
            "events_per_s": processed / wall, "p99": state["p99"]}


# --------------------------------------------------------------------------
# The 20-job elastic trace, end-to-end under both backends.
# --------------------------------------------------------------------------

def run_elastic_trace(jobs: int, backend: str) -> Dict[str, float]:
    specs = generate_trace(jobs, 12.0, seed=0)
    process = TrainingClusterProcess(
        specs, ElasticWFSScheduler(), gpu_budget=8, pool=DevicePool(8))
    runtime = Runtime(queue_backend=backend)
    t0 = time.perf_counter()
    runtime.add(process)
    runtime.run()
    wall = time.perf_counter() - t0
    result = process.result(total_gpus=8)
    finish = {job_id: j.finish_time for job_id, j in result.jobs.items()}
    return {"wall_s": wall, "events": runtime.events_processed,
            "events_per_s": runtime.events_processed / wall,
            "makespan": result.makespan, "finish_times": finish}


# --------------------------------------------------------------------------
# Driver + gates.
# --------------------------------------------------------------------------

def run(smoke: bool = False) -> Dict:
    n = SMOKE_REQUESTS if smoke else REQUESTS
    times = _arrival_times(n, ARRIVAL_RATE)
    lats = _latencies(n)

    fast_cal = run_fast_replay(times, lats, TICK_EVERY, "calendar")
    fast_heap = run_fast_replay(times, lats, TICK_EVERY, "heap")
    legacy = run_legacy_replay(times, lats, TICK_EVERY)
    speedup = legacy["wall_s"] / fast_cal["wall_s"]

    rows = [
        ["replay: legacy heap core", f"{legacy['events']:,}",
         f"{legacy['wall_s']:.2f}", f"{legacy['events_per_s']:,.0f}", "1.00x"],
        ["replay: fast path, heap index", f"{fast_heap['events']:,}",
         f"{fast_heap['wall_s']:.2f}", f"{fast_heap['events_per_s']:,.0f}",
         f"{legacy['wall_s'] / fast_heap['wall_s']:.2f}x"],
        ["replay: fast path, calendar", f"{fast_cal['events']:,}",
         f"{fast_cal['wall_s']:.2f}", f"{fast_cal['events_per_s']:,.0f}",
         f"{speedup:.2f}x"],
    ]

    payload: Dict = {
        "smoke": smoke,
        "requests": n,
        "arrival_rate": ARRIVAL_RATE,
        "replay": {
            "legacy_heap": legacy,
            "fast_heap": fast_heap,
            "fast_calendar": fast_cal,
        },
        "speedup": speedup,
    }

    if not smoke:
        elastic_heap = run_elastic_trace(20, "heap")
        elastic_cal = run_elastic_trace(20, "calendar")
        agree = (elastic_heap["makespan"] == elastic_cal["makespan"]
                 and elastic_heap["finish_times"] == elastic_cal["finish_times"])
        for label, r in (("elastic 20 jobs: heap", elastic_heap),
                         ("elastic 20 jobs: calendar", elastic_cal)):
            rows.append([label, f"{r['events']:,}", f"{r['wall_s']:.2f}",
                         f"{r['events_per_s']:,.0f}", "-"])
        payload["elastic"] = {
            "heap": {k: v for k, v in elastic_heap.items()
                     if k != "finish_times"},
            "calendar": {k: v for k, v in elastic_cal.items()
                         if k != "finish_times"},
            "backends_agree": agree,
        }

    report("runtime_throughput",
           ["workload", "events", "wall s", "events/s", "speedup"], rows,
           title=f"Event-core throughput: {n:,}-request open-loop replay "
                 f"(@{ARRIVAL_RATE:,.0f} req/s) + telemetry ticks, "
                 "legacy core vs calendar/slab/batched core",
           notes="all variants fire the identical (time, seq) event "
                 "sequence; equivalence is pinned by the golden-trace and "
                 "queue-backend suites")
    path = save_bench_json("runtime_throughput", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


def test_million_request_replay_speedup():
    """The rewritten core must clear 5x over the pre-PR heap loop and
    finish the 1M-request replay in single-digit seconds."""
    payload = run(smoke=False)
    fast = payload["replay"]["fast_calendar"]
    assert payload["speedup"] >= 5.0, (
        f"calendar/slab/batched core only {payload['speedup']:.2f}x over "
        f"the legacy heap loop (need >= 5x)")
    assert fast["wall_s"] < 10.0, (
        f"1M-request replay took {fast['wall_s']:.2f}s (need single-digit)")
    assert payload["elastic"]["backends_agree"], (
        "heap and calendar backends disagree on the 20-job elastic trace")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small replay with an absolute events/sec floor")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if args.smoke:
        eps = payload["replay"]["fast_calendar"]["events_per_s"]
        if eps < SMOKE_FLOOR_EPS:
            print(f"SMOKE FLOOR MISSED: fast path at {eps:,.0f} events/s "
                  f"(floor {SMOKE_FLOOR_EPS:,.0f})", file=sys.stderr)
            return 1
    elif payload["speedup"] < 5.0:
        print(f"WARNING: speedup {payload['speedup']:.2f}x below the 5x "
              "target (noisy machine?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
