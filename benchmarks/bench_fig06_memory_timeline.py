"""Figure 6: memory usage breakdown while training ResNet-50 on a 2080 Ti.

The paper's measurement: activations dominate peak memory (~8.17 GB at the
peak vs ~102 MB of parameters, ~173 MB of inputs), and the first step is
slower due to initial graph optimization.  We replay the same step structure
through the memory ledger and report the per-category peaks.
"""

from __future__ import annotations

import pytest

from _common import report
from repro.framework import get_workload
from repro.hardware import get_spec, simulate_step_memory
from repro.utils.units import GB, MB, format_bytes

PAPER_PEAKS = {  # category -> bytes reported in Fig 6
    "activations": 8.17 * GB,
    "parameters": 102.45 * MB,
    "inputs": 173.41 * MB,
}


def _run():
    wl = get_workload("resnet50_imagenet")
    spec = get_spec("RTX2080Ti")
    # Fig 6 trains at the device's max batch (192); one wave per step.
    return simulate_step_memory(wl, spec, wave_batches=[192], num_steps=3)


def test_fig06_memory_breakdown(benchmark):
    timeline = benchmark(_run)
    peaks = timeline.peak_by_category()
    rows = []
    for cat in ("activations", "inputs", "parameters", "grad_buffer",
                "optimizer", "kernel_temp", "other"):
        paper = PAPER_PEAKS.get(cat)
        rows.append([cat, format_bytes(peaks.get(cat, 0)),
                     format_bytes(paper) if paper else "-"])
    report("fig06_memory_timeline", ["category", "simulated peak", "paper (Fig 6)"],
           rows, title="Fig 6: ResNet-50/ImageNet memory breakdown on RTX 2080 Ti",
           notes=f"total peak {format_bytes(timeline.peak)} of 11.00GB capacity; "
                 f"{len(timeline.times)} timeline points over 3 steps")
    # Paper shape: activations are the vast majority of peak usage.
    assert peaks["activations"] > 0.6 * timeline.peak
    # Calibration: within 25% of the paper's absolute numbers.
    assert peaks["activations"] == pytest.approx(PAPER_PEAKS["activations"], rel=0.25)
    assert peaks["parameters"] == pytest.approx(PAPER_PEAKS["parameters"], rel=0.05)
    assert peaks["inputs"] == pytest.approx(PAPER_PEAKS["inputs"], rel=0.3)
    # Everything fits in the device.
    assert timeline.peak <= get_spec("RTX2080Ti").memory_bytes
