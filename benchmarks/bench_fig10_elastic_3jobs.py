"""Figure 10: elastic scheduling with three jobs on 4 GPUs.

Paper: Job 0 (BERT, 4 GPUs, pri 1), Job 1 (ResNet-56, 2 GPUs, pri 5),
Job 2 (BERT, 4 GPUs, pri 10) arrive in order.  The elastic WFS scheduler
cuts the makespan by 38% and the high-priority JCT by 45% versus a static
priority scheduler, while every job converges to the same accuracy.

The accuracy-preservation claim is verified by *really training* a
miniature job under the elastic scheduler's resize schedule and comparing
with an uninterrupted run — VirtualFlow makes them bit-identical.
"""

from __future__ import annotations

import numpy as np

from _common import report
from repro import TrainerConfig, VirtualFlowTrainer
from repro.elastic import (
    ClusterSimulator,
    ElasticWFSScheduler,
    StaticPriorityScheduler,
    compute_metrics,
    three_job_trace,
)
from repro.utils import format_duration


def _simulate():
    trace = three_job_trace()
    wfs = compute_metrics(ClusterSimulator(4, ElasticWFSScheduler()).run(trace))
    pri = compute_metrics(ClusterSimulator(4, StaticPriorityScheduler()).run(trace))
    return wfs, pri


def _accuracy_replay():
    """Train one miniature job with and without mid-training resizes."""
    def make():
        return VirtualFlowTrainer(TrainerConfig(
            workload="resnet56_cifar10", global_batch_size=64,
            num_virtual_nodes=8, num_devices=4, dataset_size=512, seed=2))

    elastic = make()
    for devices in (2, 4, 1):  # the kind of schedule the WFS scheduler makes
        elastic.train_epoch()
        elastic.resize(devices)
    elastic.train_epoch()
    steady = make()
    steady.train(epochs=4)
    return elastic, steady


def _run():
    return _simulate(), _accuracy_replay()


def test_fig10_elastic_three_jobs(benchmark):
    (wfs, pri), (elastic, steady) = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for m in (wfs, pri):
        rows.append([m.scheduler_name, format_duration(m.makespan)] +
                    [format_duration(m.jcts[j]) for j in (0, 1, 2)] +
                    [f"{m.utilization:.1%}"])
    makespan_cut = 1 - wfs.makespan / pri.makespan
    jct2_cut = 1 - wfs.jcts[2] / pri.jcts[2]
    report("fig10_elastic_3jobs",
           ["scheduler", "makespan", "JCT j0", "JCT j1", "JCT j2 (hi pri)", "util"],
           rows, title="Fig 10: 3-job trace on 4 GPUs",
           notes=(f"makespan -{makespan_cut:.1%} (paper -38%), "
                  f"high-pri JCT -{jct2_cut:.1%} (paper -45%); accuracy "
                  f"preserved bit-exactly under resizes"))
    # Shape: elastic scheduling helps both cluster- and job-level metrics.
    assert makespan_cut > 0.2
    assert jct2_cut > 0.1
    assert wfs.utilization > pri.utilization
    # Fig 10c: accuracies unchanged by elasticity — ours are bit-identical.
    pe = elastic.executor.model.parameters()
    ps = steady.executor.model.parameters()
    assert all(np.array_equal(pe[k], ps[k]) for k in pe)
    assert elastic.evaluate() == steady.evaluate()
