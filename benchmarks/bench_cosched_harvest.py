"""Co-scheduling harvest frontier: one shared pool vs. static partitions.

The paper's elasticity claim, pushed to its most interesting corner: a pool
hosting *both* elastic training jobs and a latency-SLO serving deployment.
A static partition must provision the serving side for its worst case — the
spike — and whatever it reserves is lost to training for the whole run.  The
co-scheduler instead lets serving ride the base load on a small lease and
**harvest** training GPUs only while the spike lasts (training pays the §4.1
resize stall, serving pays the §4.1 all-gather to joining devices), so
training keeps the devices the spike does not actually need.

This benchmark runs the same spiky open-loop trace (4x burst) through:

* ``static-k`` — serving pinned to k devices, training pinned to pool-k,
  for every split of the pool, and
* ``cosched`` — the autoscaled router + co-scheduler on the shared pool.

The frontier question: among policies whose whole-run p99 holds the 35 ms
SLO, who delivers the most training goodput (steps/second)?  The
co-scheduler must beat the **best** SLO-holding static split strictly —
that is the paper's "allocations can change freely at runtime" cashed out
as combined cluster value.  Everything is simulated time, deterministic in
the seed; device-second conservation is audited by the shared pool.

Results persist as ``results/cosched_harvest.txt`` and
``results/BENCH_cosched_harvest.json``.  ``--smoke`` runs a tiny trace with
no gate, for CI breakage detection.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from _common import report, save_bench_json
from repro.elastic import spike_phases
from repro.sched import resident_training_jobs, run_cosched

WORKLOAD = "mlp_synthetic"
TRAIN_WORKLOAD = "resnet56_cifar10"
POOL = 8
SLO_P99 = 0.035          # seconds — the 35 ms frontier
BASE_RATE = 500.0        # req/s; the spike multiplies this
SPIKE = 5.0
MAX_BATCH = 16
MAX_WAIT = 0.002
RESIZE_DELAY = 0.25      # training-side §4.1 stall per harvest/reclaim
TRAIN_FLOOR = 2          # tenancy guarantee: serving never harvests below it
TRAIN_JOBS = 2
TRAIN_DEMAND = 4
SEED = 1

STATIC_SPLITS = (1, 2, 3, 4, 6)   # serving devices; training gets POOL - k


def _phases(smoke: bool):
    if smoke:
        return spike_phases(BASE_RATE, SPIKE, base_duration=1.0,
                            spike_duration=0.5)
    return spike_phases(BASE_RATE, SPIKE, base_duration=4.0,
                        spike_duration=1.5)


def _run_policy(policy: str, smoke: bool):
    train_specs = resident_training_jobs(TRAIN_JOBS, demand_gpus=TRAIN_DEMAND,
                                         workload=TRAIN_WORKLOAD)
    kwargs = dict(pool_devices=POOL, max_batch=MAX_BATCH, max_wait=MAX_WAIT,
                  resize_delay=RESIZE_DELAY, seed=SEED)
    if policy == "cosched":
        kwargs.update(initial_serving=2, autoscale=True, slo_p99=SLO_P99,
                      train_floor=TRAIN_FLOOR)
    else:
        kwargs.update(initial_serving=int(policy.removeprefix("static-")),
                      autoscale=False)
    return run_cosched(WORKLOAD, _phases(smoke), train_specs, **kwargs)


def run(smoke: bool = False) -> Dict:
    policies = (["static-2", "cosched"] if smoke
                else [f"static-{k}" for k in STATIC_SPLITS] + ["cosched"])
    results: Dict[str, Dict] = {}
    rows: List[List[str]] = []
    for policy in policies:
        rep = _run_policy(policy, smoke)
        summary = rep.summary(slo_p99=SLO_P99)
        meets = bool(summary["serving_meets_slo"])
        results[policy] = {
            "p99_ms": summary["serving_latency_p99_ms"],
            "meets_slo": meets,
            "train_goodput_sps": summary["train_goodput_sps"],
            "train_avg_devices": summary["train_avg_devices"],
            "serving_avg_devices": summary["serving_avg_devices"],
            "harvests": int(summary["harvests"]),
            "remaps": int(summary["serving_remaps"]),
            "harvest_timeline": [list(h) for h in rep.harvests],
            "final_serving_devices": rep.serving.final_devices,
        }
        rows.append([
            policy, f"{summary['serving_latency_p99_ms']:.1f}",
            "yes" if meets else "NO",
            f"{summary['train_goodput_sps']:.1f}",
            f"{summary['train_avg_devices']:.2f}",
            f"{summary['serving_avg_devices']:.2f}",
            int(summary["harvests"]),
        ])

    eligible_static = {p: r["train_goodput_sps"] for p, r in results.items()
                       if p.startswith("static-") and r["meets_slo"]}
    best_static = max(eligible_static.values(), default=0.0)
    best_static_name = max(eligible_static, key=eligible_static.get,
                           default=None)
    cosched = results["cosched"]
    headline = (cosched["train_goodput_sps"] / best_static
                if best_static > 0 else float("inf"))

    report("cosched_harvest",
           ["policy", "p99 ms", f"p99<={SLO_P99*1e3:.0f}ms",
            "train steps/s", "train devs", "serve devs", "harvests"],
           rows,
           title=f"Harvest frontier: {WORKLOAD} serving + {TRAIN_JOBS}x"
                 f"{TRAIN_WORKLOAD} training on one pool of {POOL} V100s, "
                 f"rate {BASE_RATE:.0f}/s with {SPIKE:.0f}x spike "
                 f"(seed {SEED})",
           notes=f"best SLO-holding static split: "
                 f"{best_static_name or 'none'} at {best_static:.1f} "
                 f"steps/s; cosched must beat it strictly while holding "
                 f"the same {SLO_P99*1e3:.0f} ms p99 SLO")
    payload = {
        "smoke": smoke,
        "workload": WORKLOAD,
        "train_workload": TRAIN_WORKLOAD,
        "pool_devices": POOL,
        "slo_p99_ms": SLO_P99 * 1e3,
        "base_rate": BASE_RATE,
        "spike_factor": SPIKE,
        "resize_delay_s": RESIZE_DELAY,
        "seed": SEED,
        "results": results,
        "best_static_goodput": best_static,
        "best_static_policy": best_static_name,
        "speedup": headline,  # goodput ratio: cosched vs best static split
    }
    path = save_bench_json("cosched_harvest", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


# One full frontier run shared by every gate test: rerunning in smoke mode
# would clobber results/cosched_harvest.txt and BENCH_cosched_harvest.json
# with tiny-trace numbers, and CI publishes those files as artifacts.
_FULL_PAYLOAD: Dict = {}


def _full_payload() -> Dict:
    if not _FULL_PAYLOAD:
        _FULL_PAYLOAD.update(run(smoke=False))
    return _FULL_PAYLOAD


def test_cosched_harvest_frontier():
    """Cosched must out-goodput every SLO-holding static split, in-SLO.

    All quantities are simulated time — deterministic in the pinned seed —
    so unlike the wall-clock gates this one has no noise tolerance.
    """
    payload = _full_payload()
    cosched = payload["results"]["cosched"]
    assert cosched["meets_slo"], (
        f"cosched blew the SLO: p99 {cosched['p99_ms']:.1f} ms")
    assert cosched["harvests"] > 0, "the spike never harvested training GPUs"
    best_static = payload["best_static_goodput"]
    assert best_static > 0, "no static split held the SLO at all"
    assert cosched["train_goodput_sps"] > best_static, (
        f"cosched goodput {cosched['train_goodput_sps']:.1f} steps/s does "
        f"not beat the best static split ({best_static:.1f} steps/s)")


def test_harvest_returns_devices_after_spike():
    """Harvested devices must flow back to training once the p99 recovers."""
    payload = _full_payload()
    cosched = payload["results"]["cosched"]
    timeline = cosched["harvest_timeline"]
    assert timeline, "the full trace must move the training budget"
    # At least one real harvest (budget shrank) ...
    assert any(after < before for _, before, after in timeline)
    # ... and the final budget hands training everything serving released.
    pool = payload["pool_devices"]
    assert timeline[-1][2] == pool - cosched["final_serving_devices"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config, no frontier gate (CI breakage "
                             "check)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if args.smoke:
        return 0
    cosched = payload["results"]["cosched"]
    ok = (cosched["meets_slo"]
          and cosched["train_goodput_sps"] > payload["best_static_goodput"])
    if not ok:
        print("WARNING: cosched did not beat the best static split inside "
              "the SLO", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
