"""Gateway throughput: pre-PR per-request hot path vs the batched fast path.

The multi-tenant gateway is the serving front end every co-scheduling result
runs through, and under overload its admission path executes once per
*offered* request — millions of times per experiment.  This benchmark prices
the batched rewrite on a 1M-request two-tenant overload replay (a premium
tenant inside quota plus a best-effort flood, depth-capped admission, WFQ
dispatch, full request journal) against the **pre-PR hot path embedded
verbatim below** — per-request arrival materialization with a per-request
tenant string list, scalar token-bucket metering, one ``json.dumps`` journal
line per event, and a tenant report rebuilt from the full record list at
finalize.

The baseline subclasses the live gateway for the event-dispatch machinery
this PR did not touch, but every method the PR rewrote is pinned to its
pre-PR body, copied verbatim, so the baseline cannot silently inherit later
optimizations.  The current stack runs the same replay twice:

* **per-request oracle** — ``admission_mode="per_request"``: the reference
  decision loop over the new source/journal plumbing, isolating how much of
  the win is wave admission vs bulk journaling;
* **wave** — ``admission_mode="wave"`` (the default): wave-at-a-time
  arrival consumption, vectorized tenant metering, bulk WFQ pushes, and
  fused journal lines.

All three variants make identical admission decisions and write
byte-identical journals — the gate asserts it (and the golden-trace suite
pins it per fixture); this file is about wall clock.  Results persist as
``results/gateway_throughput.txt`` and ``results/BENCH_gateway_throughput
.json``.  ``--smoke`` runs a small replay with an absolute requests/sec
floor for the wave path.
"""

from __future__ import annotations

import argparse
import hashlib
import io
import os
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from _common import report, save_bench_json
from repro.core.inference import InferenceEngine
from repro.core.mapping import Mapping
from repro.core.virtual_node import VirtualNodeSet
from repro.data import make_dataset
from repro.elastic.trace import ServingPhase, serving_arrival_times
from repro.framework.models import get_workload
from repro.hardware.cluster import Cluster
from repro.runtime import EventTrace
from repro.serving.batcher import AdmissionPolicy, MicroBatchPolicy
from repro.serving.gateway import (
    DOMAIN_TENANT,
    MultiTenantPoissonSource,
    ServingGateway,
    tenant_report,
)
from repro.serving.generators import RequestSource, _ExampleBank
from repro.serving.request import Request
from repro.serving.router import RequestRouter
from repro.serving.tenancy import TenantRegistry, split_phases
from repro.utils.seeding import derive_seed

# Replay geometry: a two-tenant overload — a premium tenant well inside its
# quota share plus a best-effort flood at ~16x its share — against one
# serving device with a depth-capped queue, so the overwhelming majority of
# offered requests exercise the admission/shed/journal path.
REQUESTS = 1_000_000
ARRIVAL_RATE = 500_000.0
REGISTRY_SPEC = ("prem:class=premium,weight=8,quota=300,share=250;"
                 "flood:class=best_effort,weight=1,share=4000")
QUEUE_DEPTH = 256
SEED = 7

SMOKE_REQUESTS = 20_000
# Absolute floor for the wave path in --smoke: the wave path clears it by
# well over 2x even on a noisy runner, while regressing to per-request
# admission (~40-50k req/s on the same replay) trips it immediately.
SMOKE_FLOOR_RPS = 60_000.0


# --------------------------------------------------------------------------
# The pre-PR gateway hot path, embedded verbatim so the baseline cannot
# silently inherit later optimizations.
# --------------------------------------------------------------------------

class _LegacyMultiTenantPoissonSource(RequestSource):
    """Pre-PR merged Poisson source: a per-request tenant *string list* and
    one ``Request`` object per arrival, always (no wave protocol)."""

    def __init__(self, registry, phases_by_tenant, examples, seed=0,
                 limit=None):
        missing = [t for t in registry.tenant_ids if t not in phases_by_tenant]
        if missing:
            raise ValueError(f"no phase trace for tenants: {missing}")
        tenant_ids = registry.tenant_ids
        all_times: List[np.ndarray] = []
        all_idx: List[np.ndarray] = []
        for i, tenant_id in enumerate(tenant_ids):
            times = serving_arrival_times(
                phases_by_tenant[tenant_id],
                seed=derive_seed(seed, DOMAIN_TENANT, i), limit=limit)
            all_times.append(times)
            all_idx.append(np.full(len(times), i, dtype=np.int64))
        times = np.concatenate(all_times) if all_times else np.empty(0)
        idx = np.concatenate(all_idx) if all_idx else np.empty(0, np.int64)
        order = np.lexsort((idx, times))
        self._times = times[order]
        self._tenants = [tenant_ids[k] for k in idx[order]]
        if limit is not None and len(self._times) > limit:
            self._times = self._times[:limit]
            self._tenants = self._tenants[:limit]
        self._bank = _ExampleBank(examples)
        self._next = 0

    @property
    def total_requests(self):
        return len(self._times)

    def next_arrival_time(self):
        if self._next >= len(self._times):
            return None
        return float(self._times[self._next])

    def take_arrivals(self, until):
        end = int(np.searchsorted(self._times, until, side="right"))
        if end <= self._next:
            return []
        bank = self._bank
        out = [Request(request_id=i, arrival_time=t,
                       example=bank.next_example(),
                       tenant=self._tenants[i])
               for i, t in enumerate(
                   self._times[self._next:end].tolist(), start=self._next)]
        self._next = end
        return out


class _LegacyGateway(ServingGateway):
    """The pre-PR admission/accounting/journal path, pinned method by method.

    Every method this PR rewrote carries its pre-PR body verbatim; the
    ``super()`` calls of the originals are spelled as ``RequestRouter``
    calls here so they jump over the optimized gateway layer instead of
    re-entering it.
    """

    def __init__(self, *args, **kwargs):
        kwargs["admission_mode"] = "per_request"
        super().__init__(*args, **kwargs)

    def _admit(self, until):
        while True:
            nxt = self.source.next_arrival_time()
            if nxt is None or nxt > until:
                return
            self._enqueue(self.source.take_arrivals(nxt))

    def _pull(self, until):
        return self._enqueue(self.source.take_arrivals(until))

    def _enqueue(self, requests):
        if self.admission is None:
            self._pending.extend(requests)
            return 0
        shed = 0
        for r in requests:
            reason = self._should_shed(r)
            if reason is None:
                self._pending.push(r)
            else:
                self._record_shed(r, reason)
                shed += 1
        return shed

    def _should_shed(self, request):
        policy = self.admission
        if policy is None:
            return None
        tenant = request.tenant
        bucket = self._buckets.get(tenant)
        within_quota = (bucket.take(request.arrival_time)
                        if bucket is not None else True)
        spec = self.registry[tenant] if tenant in self.registry else None
        premium = spec is not None and spec.premium
        if premium and within_quota:
            return None
        depth_limit = policy.max_queue_depth
        wait_limit = policy.max_estimated_wait
        if not premium and self._brownout_active():
            if depth_limit is not None:
                depth_limit = max(1, depth_limit // 2)
            if wait_limit is not None:
                wait_limit = wait_limit / 2
        return self._shed_reason(request, depth_limit, wait_limit)

    def _record_shed(self, request, reason):
        RequestRouter._record_shed(self, request, reason)
        tenant = request.tenant if request.tenant is not None else ""
        self.report.tenant_shed.append(
            (request.arrival_time, request.request_id, tenant, reason))
        self._journal_emit("shed", request.arrival_time, {
            "request_id": request.request_id,
            "tenant": tenant,
            "reason": reason,
        })

    def _record_completion(self, records):
        for r in records:
            self._journal_emit("request", r.completion_time, {
                "request_id": r.request_id,
                "tenant": r.tenant,
                "arrival": r.arrival_time,
                "dispatch": r.dispatch_time,
                "completion": r.completion_time,
                "batch_id": r.batch_id,
            })

    def _finalize(self):
        RequestRouter._finalize(self)
        self.report.tenants = tenant_report(
            self.registry,
            [(r.tenant, r.latency) for r in self.report.records],
            [tenant for _, _, tenant, _ in self.report.tenant_shed])
        self._journal_emit("summary", self.report.duration, {
            "tenants": self.report.tenants,
            "requests": len(self.report.records),
            "shed": len(self.report.shed),
        })
        if self._journal is not None:
            self._journal.flush()


# --------------------------------------------------------------------------
# The two-tenant overload replay.
# --------------------------------------------------------------------------

def _build(n: int, variant: str):
    """One fully wired gateway for ``variant`` in {legacy, per_request,
    wave}, journaling to an in-memory sink."""
    registry = TenantRegistry.from_spec(REGISTRY_SPEC)
    workload = get_workload("mlp_synthetic")
    pool = Cluster.homogeneous("V100", 1)
    mapping = Mapping.even(VirtualNodeSet.even(1, 1), pool)
    engine = InferenceEngine(workload, workload.build_model(SEED), mapping)
    dataset = make_dataset(workload.dataset, n=512, seed=SEED)
    phases = [ServingPhase(n / ARRIVAL_RATE, ARRIVAL_RATE)]
    source_cls = (_LegacyMultiTenantPoissonSource if variant == "legacy"
                  else MultiTenantPoissonSource)
    source = source_cls(registry, split_phases(phases, registry),
                        dataset.x_val, seed=SEED, limit=n)
    admission = AdmissionPolicy(max_queue_depth=QUEUE_DEPTH,
                                max_estimated_wait=None)
    sink = io.StringIO()
    kwargs = dict(policy=MicroBatchPolicy(max_batch=8, max_wait=0.002),
                  pool=pool, admission=admission, journal=EventTrace(sink))
    if variant == "legacy":
        gateway = _LegacyGateway(engine, source, registry, **kwargs)
    else:
        gateway = ServingGateway(engine, source, registry,
                                 admission_mode=variant, **kwargs)
    return gateway, source, sink


def run_replay(n: int, variant: str) -> Dict[str, object]:
    gateway, source, sink = _build(n, variant)
    t0 = time.perf_counter()
    result = gateway.run()
    wall = time.perf_counter() - t0
    journal = sink.getvalue()
    return {
        "wall_s": wall,
        "offered": source.total_requests,
        "offered_per_s": source.total_requests / wall,
        "served": len(result.records),
        "shed": len(result.shed),
        "journal_bytes": len(journal),
        "journal_sha256": hashlib.sha256(journal.encode()).hexdigest(),
    }


# --------------------------------------------------------------------------
# Driver + gates.
# --------------------------------------------------------------------------

VARIANTS = (
    ("legacy", "gateway: legacy per-request stack"),
    ("per_request", "gateway: current stack, per-request oracle"),
    ("wave", "gateway: current stack, wave admission"),
)


def run(smoke: bool = False) -> Dict:
    n = SMOKE_REQUESTS if smoke else REQUESTS
    results = {variant: run_replay(n, variant) for variant, _ in VARIANTS}
    legacy = results["legacy"]
    wave = results["wave"]
    speedup = legacy["wall_s"] / wave["wall_s"]

    rows = [
        [label, f"{r['offered']:,}", f"{r['wall_s']:.2f}",
         f"{r['offered_per_s']:,.0f}",
         f"{legacy['wall_s'] / r['wall_s']:.2f}x"]
        for variant, label in VARIANTS
        for r in [results[variant]]
    ]

    payload: Dict = {
        "smoke": smoke,
        "requests": n,
        "arrival_rate": ARRIVAL_RATE,
        "queue_depth": QUEUE_DEPTH,
        "variants": {v: {k: r[k] for k in
                         ("wall_s", "offered", "offered_per_s", "served",
                          "shed", "journal_bytes")}
                     for v, r in results.items()},
        "speedup": speedup,
        "journals_identical": len({r["journal_sha256"]
                                   for r in results.values()}) == 1,
    }

    report("gateway_throughput",
           ["variant", "offered", "wall s", "req/s", "speedup"], rows,
           title=f"Gateway throughput: {n:,}-request two-tenant overload "
                 f"replay (@{ARRIVAL_RATE:,.0f} req/s offered, depth "
                 f"{QUEUE_DEPTH}), pre-PR per-request stack vs batched "
                 "wave admission",
           notes="all variants make identical admission decisions and "
                 "write byte-identical journals; equivalence is pinned "
                 "per-fixture by the golden-trace suite")
    path = save_bench_json("gateway_throughput", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


def test_million_request_gateway_speedup():
    """The batched gateway must clear 5x over the pre-PR per-request stack
    on the 1M-request overload replay — while making the exact same
    admission decisions and writing the byte-identical journal."""
    payload = run(smoke=False)
    variants = payload["variants"]
    assert payload["journals_identical"], (
        "legacy / per-request-oracle / wave journals diverged — the fast "
        "path changed observable behavior, not just wall clock")
    assert len({(v["served"], v["shed"]) for v in variants.values()}) == 1, (
        f"served/shed counts diverged across variants: "
        f"{ {k: (v['served'], v['shed']) for k, v in variants.items()} }")
    assert payload["speedup"] >= 5.0, (
        f"wave admission only {payload['speedup']:.2f}x over the pre-PR "
        f"per-request stack (need >= 5x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small replay with an absolute req/sec floor")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if not payload["journals_identical"]:
        print("EQUIVALENCE FAILED: variant journals diverged",
              file=sys.stderr)
        return 1
    if args.smoke:
        rps = payload["variants"]["wave"]["offered_per_s"]
        if rps < SMOKE_FLOOR_RPS:
            print(f"SMOKE FLOOR MISSED: wave path at {rps:,.0f} req/s "
                  f"(floor {SMOKE_FLOOR_RPS:,.0f})", file=sys.stderr)
            return 1
    elif payload["speedup"] < 5.0:
        print(f"WARNING: speedup {payload['speedup']:.2f}x below the 5x "
              "target (noisy machine?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
