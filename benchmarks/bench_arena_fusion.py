"""Flat tensor arena: dict-path vs fused-flat-path hot-path microbenchmark.

The per-step sync + optimizer hot path — snapshot every virtual node's
gradients, compute the §5.2 example-weighted average, apply one optimizer
update — is pure bookkeeping around the model math, yet on the dict path it
costs O(num_virtual_nodes * num_params) Python-level loop iterations and
fresh allocations.  The arena path runs the same arithmetic (bit-identical;
see ``tests/framework/test_arena.py``) as a handful of fused vector ops over
two contiguous buffers.

This benchmark isolates exactly that hot path (no forward/backward, which is
identical in both) on many-virtual-node configurations — the regime the
paper's fig17/fig18 overhead measurements target — and asserts the fused
path is at least 2x faster on the headline config.  It also reports
end-to-end training-step times (including model math) for context.

Results persist as ``results/arena_fusion.txt`` (table) and
``results/BENCH_arena_fusion.json`` (machine-readable perf record — see the
``BENCH_*.json`` convention in ``_common.py``).  ``--smoke`` runs a tiny
config with no speedup gate, for CI breakage detection.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

import numpy as np

from _common import report, save_bench_json
from repro.core import TrainerConfig, VirtualFlowTrainer
from repro.core.sync import weighted_average, weighted_average_flat
from repro.framework import AdamW, FlatTensorArena, Momentum, get_workload

# (workload, virtual nodes, optimizer factory) — headline config last.
CONFIGS = (
    ("mlp_synthetic", 16, lambda: Momentum(0.05)),
    ("bert_base_glue", 16, lambda: AdamW(1e-3)),
    ("bert_base_glue", 32, lambda: AdamW(1e-3)),
)
SMOKE_CONFIGS = (("mlp_synthetic", 4, lambda: Momentum(0.05)),)


def _best_of(fn, steps: int, reps: int) -> float:
    """Best-of-``reps`` mean seconds per call over ``steps`` calls."""
    fn()  # warm
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(steps):
            fn()
        best = min(best, (time.perf_counter() - t0) / steps)
    return best


def _hot_path_times(workload_name: str, num_vns: int, opt_factory,
                    steps: int, reps: int) -> Dict[str, float]:
    """Seconds/step of the isolated sync+optimizer hot path, both storages.

    Both paths run the reference backend's exact post-backward sequence: a
    per-virtual-node gradient snapshot, the canonical weighted average, and
    one optimizer update — dict-of-scattered-arrays vs flat arena.
    """
    workload = get_workload(workload_name)
    rng = np.random.default_rng(0)

    dict_model = workload.build_model(0)
    for g in dict_model.gradients().values():
        g[...] = rng.standard_normal(g.shape)
    dict_opt = opt_factory()
    dict_params = dict_model.parameters()
    weights = [1.0] * num_vns

    def dict_step() -> None:
        contributions = [
            ({k: g.copy() for k, g in dict_model.gradients().items()}, w)
            for w in weights
        ]
        avg = weighted_average(contributions)
        dict_opt.step(dict_params, avg)

    arena_model = workload.build_model(0)
    arena = FlatTensorArena.install(arena_model)
    arena.grads_flat[...] = rng.standard_normal(arena.layout.total_size)
    arena_opt = opt_factory()
    arena_params = arena_model.parameters()

    def arena_step() -> None:
        stack = arena.grad_stack(num_vns)
        for i in range(num_vns):
            stack[i] = arena.grads_flat
        avg_flat = weighted_average_flat(stack, weights, clobber=True)
        arena_opt.step(arena_params, arena.view_of(avg_flat))

    return {
        "dict_s": _best_of(dict_step, steps, reps),
        "arena_s": _best_of(arena_step, steps, reps),
        "num_params": len(arena.layout.names),
        "param_elements": arena.layout.total_size,
    }


def _end_to_end_times(workload_name: str, num_vns: int,
                      steps: int, reps: int) -> Dict[str, float]:
    """Seconds/step of full executor steps (model math included)."""
    out = {}
    batch = num_vns  # one example per virtual node: sync-bound regime
    for key, arena in (("dict_s", False), ("arena_s", True)):
        trainer = VirtualFlowTrainer(TrainerConfig(
            workload=workload_name, global_batch_size=batch,
            num_virtual_nodes=num_vns, num_devices=2,
            dataset_size=2 * batch, arena=arena))
        x = trainer.dataset.x_train[:batch]
        y = trainer.dataset.y_train[:batch]
        counter = {"step": 0}

        def one_step() -> None:
            trainer.executor.run_step(x, y, epoch=0, step=counter["step"])
            counter["step"] += 1

        out[key] = _best_of(one_step, steps, reps)
    return out


def run(smoke: bool = False) -> Dict:
    configs = SMOKE_CONFIGS if smoke else CONFIGS
    steps = 3 if smoke else 20
    reps = 1 if smoke else 3
    rows: List[List[str]] = []
    records: List[Dict] = []
    for workload_name, num_vns, opt_factory in configs:
        hot = _hot_path_times(workload_name, num_vns, opt_factory, steps, reps)
        e2e = _end_to_end_times(workload_name, num_vns,
                                max(2, steps // 4), reps)
        hot_speedup = hot["dict_s"] / hot["arena_s"]
        e2e_speedup = e2e["dict_s"] / e2e["arena_s"]
        opt_name = type(opt_factory()).__name__
        rows.append([
            workload_name, f"{num_vns}VN", opt_name,
            f"{hot['dict_s']*1e3:.3f}", f"{hot['arena_s']*1e3:.3f}",
            f"{hot_speedup:.2f}x", f"{e2e_speedup:.2f}x",
        ])
        records.append({
            "workload": workload_name,
            "virtual_nodes": num_vns,
            "optimizer": opt_name,
            "num_params": int(hot["num_params"]),
            "param_elements": int(hot["param_elements"]),
            "hot_path_dict_ms": hot["dict_s"] * 1e3,
            "hot_path_arena_ms": hot["arena_s"] * 1e3,
            "hot_path_speedup": hot_speedup,
            "end_to_end_dict_ms": e2e["dict_s"] * 1e3,
            "end_to_end_arena_ms": e2e["arena_s"] * 1e3,
            "end_to_end_speedup": e2e_speedup,
        })
    headline = records[-1]["hot_path_speedup"]
    report("arena_fusion",
           ["workload", "config", "optimizer", "dict ms/step", "arena ms/step",
            "hot-path speedup", "end-to-end speedup"],
           rows,
           title="Flat tensor arena: per-step sync+optimizer hot path, "
                 "dict-of-arrays vs fused contiguous buffers "
                 "(bit-identical results)",
           notes="hot path = VN gradient snapshots + weighted average + "
                 "optimizer update; target >= 2x on the many-VN config")
    payload = {
        "smoke": smoke,
        "configs": records,
        "speedup": headline,
    }
    path = save_bench_json("arena_fusion", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


def test_arena_fusion_speedup():
    """The fused hot path must clear 2x on the many-virtual-node config.

    Bit-identity is asserted by the equivalence suite; this gate is purely
    about wall clock.  Shared CI runners throttle unpredictably, so the bar
    is relaxed there (the table is still published for inspection).
    """
    payload = run(smoke=False)
    for record in payload["configs"]:
        assert record["hot_path_speedup"] > 1.05, (
            f"{record['workload']}@{record['virtual_nodes']}VN: arena hot "
            f"path slower than dict path ({record['hot_path_speedup']:.2f}x)")
    floor = 1.5 if os.environ.get("CI") else 2.0
    assert payload["speedup"] > floor, (
        f"headline config below {floor}x ({payload['speedup']:.2f}x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config, no speedup gate (CI breakage check)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if not args.smoke and payload["speedup"] < 2.0:
        print(f"WARNING: headline speedup {payload['speedup']:.2f}x below the "
              "2x target (noisy machine?)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
