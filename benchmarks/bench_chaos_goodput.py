"""Chaos goodput frontier: co-scheduling vs static splits under failures.

The robustness claim behind the paper's elasticity story: because virtual
nodes decouple both tenants from their hardware, a device crash is just a
resize — training migrates onto the survivors (paying detection plus the
§4.1 all-gather) and serving re-admits the interrupted requests on what is
left — so a co-scheduled pool should degrade *gracefully* as the failure
rate climbs, while a static partition loses whatever side the dead device
belonged to until repair.

This benchmark sweeps a seeded crash rate (same fault plan for every policy
at a given rate, so comparisons are apples-to-apples) over:

* ``static-k`` — serving pinned to k devices, training pinned to pool-k;
  a crashed serving device halts admission until the repair restores the
  pinned size, and
* ``cosched``  — the autoscaled router + co-scheduler, which re-arbitrates
  the surviving healthy capacity after every crash and revive.

The frontier question, per failure rate: among policies whose whole-run
p99-SLO attainment stays above the floor, who delivers the most training
goodput?  Everything is simulated time, deterministic in the seeds; the
shared pool audits three-way (busy + idle + failed) device-second
conservation in every cell.

Results persist as ``results/chaos_goodput.txt`` and
``results/BENCH_chaos_goodput.json``.  ``--smoke`` runs a tiny trace with
no gate, for CI breakage detection.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List

from _common import report, save_bench_json
from repro.chaos import random_plan
from repro.core import RecoveryPolicy
from repro.elastic import spike_phases
from repro.sched import resident_training_jobs, run_cosched

WORKLOAD = "mlp_synthetic"
TRAIN_WORKLOAD = "resnet56_cifar10"
POOL = 8
SLO_P99 = 0.035          # seconds — the 35 ms frontier
BASE_RATE = 500.0        # req/s; the spike multiplies this
SPIKE = 5.0
MAX_BATCH = 16
MAX_WAIT = 0.002
RESIZE_DELAY = 0.25      # training-side §4.1 stall per harvest/reclaim
TRAIN_FLOOR = 2          # tenancy guarantee: serving never harvests below it
TRAIN_JOBS = 2
TRAIN_DEMAND = 4
SEED = 1                 # workload seed (arrivals, model init)
CHAOS_SEED = 11          # fault-plan seed, deliberately independent
MTTR = 1.5               # mean seconds a crashed device stays down
CRASH_RATES = (0.0, 0.3, 0.6)   # cluster-wide crashes per simulated second
ATTAIN_FLOOR = 0.95      # a policy "holds" the SLO if attainment >= this

STATIC_SPLITS = (2, 3, 4)   # serving devices; training gets POOL - k

RECOVERY = RecoveryPolicy(mode="migrate")


def _phases(smoke: bool):
    if smoke:
        return spike_phases(BASE_RATE, SPIKE, base_duration=1.0,
                            spike_duration=0.5)
    return spike_phases(BASE_RATE, SPIKE, base_duration=4.0,
                        spike_duration=1.5)


def _plan(crash_rate: float, smoke: bool):
    duration = sum(p.duration for p in _phases(smoke))
    return random_plan(seed=CHAOS_SEED, duration=duration, devices=POOL,
                       crash_rate=crash_rate, mttr=MTTR,
                       min_healthy=TRAIN_FLOOR + 1)


def _run_policy(policy: str, crash_rate: float, smoke: bool):
    train_specs = resident_training_jobs(TRAIN_JOBS, demand_gpus=TRAIN_DEMAND,
                                         workload=TRAIN_WORKLOAD)
    kwargs = dict(pool_devices=POOL, max_batch=MAX_BATCH, max_wait=MAX_WAIT,
                  resize_delay=RESIZE_DELAY, seed=SEED,
                  fault_plan=_plan(crash_rate, smoke), recovery=RECOVERY)
    if policy == "cosched":
        kwargs.update(initial_serving=2, autoscale=True, slo_p99=SLO_P99,
                      train_floor=TRAIN_FLOOR)
    else:
        kwargs.update(initial_serving=int(policy.removeprefix("static-")),
                      autoscale=False)
    return run_cosched(WORKLOAD, _phases(smoke), train_specs, **kwargs)


def run(smoke: bool = False) -> Dict:
    rates = (CRASH_RATES[0], CRASH_RATES[-1]) if smoke else CRASH_RATES
    policies = (["static-2", "cosched"] if smoke
                else [f"static-{k}" for k in STATIC_SPLITS] + ["cosched"])
    frontier: List[Dict] = []
    rows: List[List[str]] = []
    for rate in rates:
        cells: Dict[str, Dict] = {}
        for policy in policies:
            rep = _run_policy(policy, rate, smoke)
            summary = rep.summary(slo_p99=SLO_P99)
            chaos = rep.chaos or {}
            cells[policy] = {
                "p99_ms": summary["serving_latency_p99_ms"],
                "slo_attainment": summary["serving_slo_attainment"],
                "holds_slo": summary["serving_slo_attainment"] >= ATTAIN_FLOOR,
                "train_goodput_sps": summary["train_goodput_sps"],
                "train_avg_devices": summary["train_avg_devices"],
                "serving_avg_devices": summary["serving_avg_devices"],
                "crashes": chaos.get("crashes", 0),
                "requeued_requests": chaos.get("requeued_requests", 0),
                "train_recoveries": len(chaos.get("train_recoveries", [])),
            }
            rows.append([
                f"{rate:g}", policy,
                f"{summary['serving_latency_p99_ms']:.1f}",
                f"{summary['serving_slo_attainment']:.1%}",
                f"{summary['train_goodput_sps']:.1f}",
                cells[policy]["crashes"],
                cells[policy]["requeued_requests"],
                cells[policy]["train_recoveries"],
            ])
        eligible = {p: c["train_goodput_sps"] for p, c in cells.items()
                    if p.startswith("static-") and c["holds_slo"]}
        best_static = max(eligible.values(), default=0.0)
        frontier.append({
            "crash_rate": rate,
            "cells": cells,
            "best_static_goodput": best_static,
            "best_static_policy": max(eligible, key=eligible.get,
                                      default=None),
            "cosched_goodput": cells["cosched"]["train_goodput_sps"],
            "cosched_attainment": cells["cosched"]["slo_attainment"],
        })

    report("chaos_goodput",
           ["crash/s", "policy", "p99 ms", "SLO attain", "train steps/s",
            "crashes", "requeued", "recoveries"],
           rows,
           title=f"Chaos goodput frontier: {WORKLOAD} serving + "
                 f"{TRAIN_JOBS}x{TRAIN_WORKLOAD} training on one pool of "
                 f"{POOL} V100s, seeded crash/revive injection "
                 f"(MTTR {MTTR:g}s, chaos seed {CHAOS_SEED})",
           notes=f"per crash rate, cosched must hold attainment >= "
                 f"{ATTAIN_FLOOR:.0%} and out-goodput the best static split "
                 f"that also holds it; same fault plan for every policy at "
                 f"a given rate")
    payload = {
        "smoke": smoke,
        "workload": WORKLOAD,
        "train_workload": TRAIN_WORKLOAD,
        "pool_devices": POOL,
        "slo_p99_ms": SLO_P99 * 1e3,
        "attain_floor": ATTAIN_FLOOR,
        "mttr_s": MTTR,
        "seed": SEED,
        "chaos_seed": CHAOS_SEED,
        "crash_rates": list(rates),
        "frontier": frontier,
    }
    path = save_bench_json("chaos_goodput", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


# One full frontier run shared by every gate test (rerunning in smoke mode
# would clobber the published results files with tiny-trace numbers).
_FULL_PAYLOAD: Dict = {}


def _full_payload() -> Dict:
    if not _FULL_PAYLOAD:
        _FULL_PAYLOAD.update(run(smoke=False))
    return _FULL_PAYLOAD


def test_chaos_frontier_cosched_wins():
    """At every failure rate, cosched holds the SLO floor and out-goodputs
    the best static split that also holds it.

    All quantities are simulated time — deterministic in the pinned seeds —
    so this gate has no noise tolerance and never retries.
    """
    payload = _full_payload()
    for point in payload["frontier"]:
        rate = point["crash_rate"]
        assert point["cosched_attainment"] >= payload["attain_floor"], (
            f"cosched lost the SLO floor at crash rate {rate:g}: "
            f"attainment {point['cosched_attainment']:.1%}")
        assert point["best_static_goodput"] > 0, (
            f"no static split held the SLO floor at crash rate {rate:g}")
        assert point["cosched_goodput"] > point["best_static_goodput"], (
            f"cosched goodput {point['cosched_goodput']:.1f} steps/s does "
            f"not beat the best static split "
            f"({point['best_static_goodput']:.1f}) at crash rate {rate:g}")


def test_chaos_degrades_goodput_not_correctness():
    """Failures cost goodput (the frontier slopes down) but every crash is
    recovered: training migrates and serving requeues rather than losing
    requests."""
    payload = _full_payload()
    frontier = payload["frontier"]
    clean = frontier[0]
    worst = frontier[-1]
    assert clean["crash_rate"] == 0.0 and worst["crash_rate"] > 0.0
    assert worst["cosched_goodput"] < clean["cosched_goodput"], (
        "injected crashes did not degrade cosched training goodput at all "
        "— the chaos plan is not reaching the training tenant")
    for point in frontier[1:]:
        for policy, cell in point["cells"].items():
            assert cell["crashes"] > 0, (
                f"{policy} saw no crashes at rate {point['crash_rate']:g}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config, no frontier gate (CI breakage "
                             "check)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if args.smoke:
        return 0
    ok = all(p["cosched_attainment"] >= payload["attain_floor"]
             and p["cosched_goodput"] > p["best_static_goodput"] > 0
             for p in payload["frontier"])
    if not ok:
        print("WARNING: cosched did not dominate the chaos frontier",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
