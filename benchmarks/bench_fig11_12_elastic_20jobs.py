"""Figures 11 + 12: the 20-job elastic scheduling trace.

Paper: 20 jobs, Poisson arrivals at 12 jobs/hour, Table 3 workload mix, on
8 V100s.  Elasticity improves average utilization from 71.1% to 90.6%,
cuts the makespan by 45.5%, the median JCT by 47.6%, and the median queuing
delay by 99.3%.
"""

from __future__ import annotations

import numpy as np

from _common import report, save_series
from repro.elastic import (
    ClusterSimulator,
    ElasticWFSScheduler,
    StaticPriorityScheduler,
    compute_metrics,
    generate_trace,
)

NUM_JOBS = 20
JOBS_PER_HOUR = 12
GPUS = 8
SEED = 3


def _run():
    trace = generate_trace(NUM_JOBS, JOBS_PER_HOUR, seed=SEED,
                           target_runtime=2400)
    wfs_res = ClusterSimulator(GPUS, ElasticWFSScheduler()).run(trace)
    pri_res = ClusterSimulator(GPUS, StaticPriorityScheduler()).run(trace)
    return compute_metrics(wfs_res), compute_metrics(pri_res)


def _cdf(values):
    xs = np.sort(list(values))
    return [(float(x), (i + 1) / len(xs)) for i, x in enumerate(xs)]


def test_fig11_12_twenty_job_trace(benchmark):
    wfs, pri = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        ["utilization", f"{wfs.utilization:.1%}", f"{pri.utilization:.1%}",
         "90.6% vs 71.1%"],
        ["makespan (s)", f"{wfs.makespan:.0f}", f"{pri.makespan:.0f}",
         "-45.5%"],
        ["median JCT (s)", f"{wfs.median_jct:.0f}", f"{pri.median_jct:.0f}",
         "-47.6%"],
        ["median queue delay (s)", f"{wfs.median_queuing_delay:.0f}",
         f"{pri.median_queuing_delay:.0f}", "-99.3%"],
    ]
    report("fig11_12_elastic_20jobs", ["metric", "VF elastic", "priority", "paper"],
           rows, title=f"Figs 11-12: {NUM_JOBS} jobs, {JOBS_PER_HOUR}/h, {GPUS} GPUs")
    save_series("fig12_jct_cdf", "jct_seconds cdf scheduler",
                [f"{x:.1f} {p:.3f} wfs" for x, p in _cdf(wfs.jcts.values())] +
                [f"{x:.1f} {p:.3f} priority" for x, p in _cdf(pri.jcts.values())])
    save_series("fig12_queue_cdf", "delay_seconds cdf scheduler",
                [f"{x:.1f} {p:.3f} wfs" for x, p in _cdf(wfs.queuing_delays.values())] +
                [f"{x:.1f} {p:.3f} priority" for x, p in _cdf(pri.queuing_delays.values())])
    # Paper shapes.
    assert wfs.utilization > pri.utilization
    assert wfs.makespan < pri.makespan * 0.85
    assert wfs.median_jct < pri.median_jct
    assert wfs.median_queuing_delay < pri.median_queuing_delay * 0.25
