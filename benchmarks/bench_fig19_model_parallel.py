"""Figure 19 (§7): virtual nodes under model parallelism.

Paper sketch: a 4-stage model-parallel job whose stages are each replicated
2-way data-parallel uses 8 GPUs; replacing the replicas with 2 virtual nodes
per stage GPU halves the resource requirement at ~2x the step time, and
GPipe-style pipelining of the virtual nodes recovers most of that time.
"""

from __future__ import annotations

import pytest

from _common import report
from repro.core import (
    data_parallel_pipeline,
    pipelined_virtual_nodes,
    virtual_node_pipeline,
)

# Per-stage (forward, backward) seconds per microbatch for a 4-stage model.
STAGES = [(0.020, 0.040), (0.025, 0.050), (0.025, 0.050), (0.020, 0.040)]
REPLICAS = 2


def _run():
    dp = data_parallel_pipeline(STAGES, replicas=REPLICAS)
    vn = virtual_node_pipeline(STAGES, virtual_nodes=REPLICAS)
    piped = pipelined_virtual_nodes(STAGES, virtual_nodes=REPLICAS)
    piped8 = pipelined_virtual_nodes(STAGES, virtual_nodes=8)
    vn8 = virtual_node_pipeline(STAGES, virtual_nodes=8)
    return dp, vn, piped, vn8, piped8


def test_fig19_model_parallel_virtual_nodes(benchmark):
    dp, vn, piped, vn8, piped8 = benchmark(_run)
    rows = [[c.name, c.num_gpus, f"{c.step_time:.3f}"]
            for c in (dp, vn, piped, vn8, piped8)]
    report("fig19_model_parallel", ["configuration", "GPUs", "step time (s)"],
           rows, title="Fig 19: model parallelism, 4 stages")
    # "lowers the resource requirement for this workload by half"
    assert vn.num_gpus == dp.num_gpus // 2
    # ... trading compute time for resources.
    assert vn.step_time == pytest.approx(REPLICAS * dp.step_time)
    # Pipelining (future work) recovers time at the same GPU count.
    assert piped8.step_time < vn8.step_time
    assert piped8.num_gpus == vn8.num_gpus
