"""Serving SLO frontier: fixed virtual-node mappings vs. elastic autoscaling.

An online serving deployment is provisioned against a *budget* (devices it
may hold on average) and judged against a *tail SLO* (p99 latency).  This
benchmark sweeps open-loop Poisson arrival rates — each trace carrying a 4x
load spike — through the request router of :mod:`repro.serving` under two
policies on the same 8-device pool:

* **fixed** mappings that fit the budget statically (1, 2, or 4 devices,
  with the full 8-device pool shown as an over-budget reference), and
* the **autoscaled** mapping, which rides the base load inside the budget
  and bursts to the full pool during the spike.

The frontier is the highest swept arrival rate a policy serves with whole-
run p99 inside the SLO.  The autoscaled mapping must clear the best
budget-fitting fixed mapping *strictly* — that is the paper's elasticity
story applied to serving: capacity is a pure mapping change, so riding a
spike needs no standing over-provisioning.  Everything here is simulated
time, deterministic in the seed; the numeric forwards are real, and one
autoscaled run is audited batch-by-batch for bit-identity against one-shot
:class:`~repro.core.inference.InferenceEngine` batches.

Results persist as ``results/serving_slo.txt`` (table) and
``results/BENCH_serving_slo.json`` (machine-readable record — see the
``BENCH_*.json`` convention in ``_common.py``).  ``--smoke`` runs one tiny
rate with no gate, for CI breakage detection.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import defaultdict
from typing import Dict, List

import numpy as np

from _common import report, save_bench_json
from repro.core import InferenceEngine, Mapping, VirtualNodeSet
from repro.data import make_dataset
from repro.elastic import spike_phases
from repro.framework import get_workload
from repro.hardware import Cluster
from repro.serving import serve_workload

WORKLOAD = "mlp_synthetic"
POOL = 8                 # devices in the pool
BUDGET = POOL // 2       # devices a static deployment may hold
SLO_P99 = 0.035          # seconds
MAX_BATCH = 16
MAX_WAIT = 0.002
SPIKE = 4.0
SEED = 1

RATES = (400, 600, 800, 1000, 1200, 1400, 1600)
FIXED = (1, 2, 4, 8)     # 8 is the over-budget reference line
SMOKE_RATES = (300,)

# The average allocation an autoscaled run may hold and still count as
# budget-fitting; the slack covers the spike burst amortized over the trace.
BUDGET_SLACK = 1.2


def _phases(rate: float, smoke: bool):
    if smoke:
        return spike_phases(rate, SPIKE, base_duration=1.0, spike_duration=0.5)
    return spike_phases(rate, SPIKE, base_duration=6.0, spike_duration=1.5)


def _run_policy(rate: float, policy: str, smoke: bool,
                collect_logits: bool = False):
    kwargs = dict(max_batch=MAX_BATCH, max_wait=MAX_WAIT, pool_devices=POOL,
                  seed=SEED, collect_logits=collect_logits)
    if policy == "autoscaled":
        kwargs.update(autoscale=True, slo_p99=SLO_P99,
                      initial_devices=BUDGET)
    else:
        kwargs.update(initial_devices=int(policy.removeprefix("fixed-")))
    return serve_workload(WORKLOAD, _phases(rate, smoke), **kwargs)


def _verify_bit_identity(serving_report) -> int:
    """Every dispatched micro-batch must equal a one-shot engine batch.

    Returns the number of batches audited.  The one-shot engine keeps the
    serving job's virtual-node set (the semantic contract results attach to)
    but runs it on a deliberately different mapping — predictions are
    mapping-invariant, so this checks the whole serving path end to end.
    """
    workload = get_workload(WORKLOAD)
    bank = make_dataset(workload.dataset, n=512, seed=SEED).x_val
    oneshot = InferenceEngine(
        workload, workload.build_model(SEED),
        Mapping.even(VirtualNodeSet.even(POOL, POOL),
                     Cluster.homogeneous("V100", 1)))
    by_batch = defaultdict(list)
    for record in serving_report.records:
        by_batch[record.batch_id].append(record)
    for records in by_batch.values():
        x = np.stack([bank[r.request_id % len(bank)] for r in records])
        expected = oneshot.predict(x).logits
        got = np.stack([serving_report.logits[r.request_id] for r in records])
        np.testing.assert_array_equal(got, expected)
    return len(by_batch)


def run(smoke: bool = False) -> Dict:
    rates = SMOKE_RATES if smoke else RATES
    policies = ["fixed-2", "autoscaled"] if smoke else (
        [f"fixed-{k}" for k in FIXED] + ["autoscaled"])
    results: Dict[str, List[Dict]] = {p: [] for p in policies}
    rows: List[List[str]] = []
    audited = 0
    for rate in rates:
        for policy in policies:
            # Audit one mid-sweep autoscaled run batch-by-batch.
            audit = policy == "autoscaled" and (smoke or rate == rates[len(rates) // 2])
            rep = _run_policy(rate, policy, smoke, collect_logits=audit)
            if audit:
                audited = _verify_bit_identity(rep)
            summary = rep.summary(slo_p99=SLO_P99)
            meets = bool(summary["meets_slo"])
            results[policy].append({
                "rate": rate,
                "p99_ms": summary["latency_p99_ms"],
                "p50_ms": summary["latency_p50_ms"],
                "avg_devices": summary["avg_devices"],
                "remaps": int(summary["remaps"]),
                "meets_slo": meets,
            })
            rows.append([
                rate, policy, f"{summary['latency_p50_ms']:.1f}",
                f"{summary['latency_p99_ms']:.1f}",
                f"{summary['avg_devices']:.2f}", int(summary["remaps"]),
                "yes" if meets else "NO",
            ])

    def frontier(policy: str) -> int:
        """Highest sustained rate: every swept rate up to it meets the SLO."""
        best = 0
        for entry in results[policy]:
            if not entry["meets_slo"]:
                break
            best = entry["rate"]
        return best

    frontiers = {p: frontier(p) for p in policies}
    budget_fixed = [p for p in policies
                    if p.startswith("fixed-")
                    and int(p.removeprefix("fixed-")) <= BUDGET]
    best_fixed = max((frontiers[p] for p in budget_fixed), default=0)
    headline = (frontiers.get("autoscaled", 0) / best_fixed
                if best_fixed else float("inf"))

    report("serving_slo",
           ["rate (req/s)", "policy", "p50 ms", "p99 ms", "avg devices",
            "remaps", f"p99<={SLO_P99*1e3:.0f}ms"],
           rows,
           title=f"Serving SLO frontier: {WORKLOAD} on a pool of {POOL} "
                 f"V100s with a {SPIKE:.0f}x load spike "
                 f"(budget {BUDGET} devices, seed {SEED})",
           notes=f"frontiers: " + ", ".join(
               f"{p}={frontiers[p]}" for p in policies)
               + f"; autoscaled must beat the best fixed-under-budget "
                 f"mapping ({best_fixed} req/s) strictly")
    payload = {
        "smoke": smoke,
        "workload": WORKLOAD,
        "pool_devices": POOL,
        "budget_devices": BUDGET,
        "budget_slack": BUDGET_SLACK,
        "slo_p99_ms": SLO_P99 * 1e3,
        "spike_factor": SPIKE,
        "seed": SEED,
        "rates": list(rates),
        "results": results,
        "frontiers": frontiers,
        "best_fixed_under_budget": best_fixed,
        "bit_identity_batches_audited": audited,
        "speedup": headline,  # frontier ratio: autoscaled vs best fixed
    }
    path = save_bench_json("serving_slo", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


def test_serving_slo_frontier():
    """The autoscaled mapping must beat every budget-fitting fixed mapping.

    All quantities are simulated time — deterministic in the pinned seed —
    so unlike the wall-clock gates this one has no noise tolerance.
    """
    payload = run(smoke=False)
    frontiers = payload["frontiers"]
    best_fixed = payload["best_fixed_under_budget"]
    assert best_fixed > 0, "no fixed mapping met the SLO at any swept rate"
    assert frontiers["autoscaled"] > best_fixed, (
        f"autoscaled frontier {frontiers['autoscaled']} req/s does not beat "
        f"the best fixed-under-budget mapping ({best_fixed} req/s)")
    # The autoscaled run must fit the budget on average at every rate it
    # serves within SLO — bursting is free only because it is brief.
    for entry in payload["results"]["autoscaled"]:
        if entry["rate"] <= frontiers["autoscaled"]:
            assert entry["avg_devices"] <= payload["budget_devices"] * payload["budget_slack"], (
                f"autoscaled run at {entry['rate']} req/s held "
                f"{entry['avg_devices']:.2f} devices on average")
    # The spike must actually exercise elasticity, and every audited batch
    # must be bit-identical to a one-shot inference batch.
    assert any(entry["remaps"] > 0 for entry in payload["results"]["autoscaled"])
    assert payload["bit_identity_batches_audited"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config, no frontier gate (CI breakage check)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if not args.smoke and payload["frontiers"]["autoscaled"] <= payload["best_fixed_under_budget"]:
        print("WARNING: autoscaled frontier did not beat the best fixed "
              "mapping", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
