"""Figure 17: peak memory and throughput across virtual node counts.

Paper (single RTX 2080 Ti, values normalized to vanilla TensorFlow):

* top — the gradient buffer adds a model-sized constant: BERT-LARGE sees up
  to 16.2% peak-memory overhead, flat beyond 2 virtual nodes;
* bottom — throughput scales with virtual nodes for large models (+31.4%
  for BERT-LARGE: fewer expensive optimizer updates per example) and dips
  slightly at worst (-4.2%).
"""

from __future__ import annotations

import pytest

from _common import report
from repro.framework import get_workload
from repro.hardware import PerfModel, get_spec
from repro.utils.validation import power_of_two_like_sizes

WORKLOADS = ("resnet50_imagenet", "transformer_wmt", "bert_large_glue")
VNS = (1, 2, 4, 8, 16, 32)


def _max_wave(wl, spec) -> int:
    cap = wl.footprint.max_batch(spec.memory_bytes, wl.optimizer_slots)
    return power_of_two_like_sizes(cap)[-1]


def _run():
    perf = PerfModel()
    spec = get_spec("RTX2080Ti")
    memory = {}
    throughput = {}
    for name in WORKLOADS:
        wl = get_workload(name)
        b = _max_wave(wl, spec)
        vanilla_mem = wl.footprint.wave_bytes(b, wl.optimizer_slots,
                                              grad_buffer=False)
        vanilla_tput = b / perf.vanilla_step_time(wl, spec, b)
        memory[name] = [
            wl.footprint.wave_bytes(b, wl.optimizer_slots, grad_buffer=True)
            / vanilla_mem
            for _ in VNS  # constant: the buffer does not scale with VNs
        ]
        throughput[name] = [
            (v * b / perf.device_step_time(wl, spec, [b] * v)) / vanilla_tput
            for v in VNS
        ]
    return memory, throughput


def test_fig17_microbenchmarks(benchmark):
    memory, throughput = benchmark(_run)
    rows = []
    for name in WORKLOADS:
        rows.append([name, "memory"] + [f"{m:.3f}" for m in memory[name]])
        rows.append([name, "throughput"] + [f"{t:.3f}" for t in throughput[name]])
    report("fig17_microbench", ["workload", "metric"] + [f"{v}VN" for v in VNS],
           rows, title="Fig 17: normalized peak memory (top) and throughput "
                       "(bottom) on RTX 2080 Ti",
           notes="paper: BERT memory overhead <= 16.2%, flat in VNs; "
                 "BERT throughput +31.4% at high VN; worst dip -4.2%")
    # Memory: overhead constant in VN count and bounded like the paper.
    for name in WORKLOADS:
        assert len(set(round(m, 9) for m in memory[name])) == 1
        overhead = memory[name][0] - 1
        assert 0 < overhead < 0.20
    big = memory["bert_large_glue"][0] - 1
    assert big == max(m[0] - 1 for m in memory.values())  # scales w/ model size
    # Throughput: large models gain the most from update amortization.
    bert = throughput["bert_large_glue"]
    assert bert[-1] > 1.15          # paper: +31.4%
    assert bert == sorted(bert)     # monotone in VN count
    for name in WORKLOADS:
        assert min(throughput[name]) > 0.90   # worst dip small (paper -4.2%)
