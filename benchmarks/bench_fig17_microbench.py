"""Figure 17: peak memory and throughput across virtual node counts.

Paper (single RTX 2080 Ti, values normalized to vanilla TensorFlow):

* top — the gradient buffer adds a model-sized constant: BERT-LARGE sees up
  to 16.2% peak-memory overhead, flat beyond 2 virtual nodes;
* bottom — throughput scales with virtual nodes for large models (+31.4%
  for BERT-LARGE: fewer expensive optimizer updates per example) and dips
  slightly at worst (-4.2%).

A third table compares the host execution backends: the ``fused`` backend
must reproduce the ``reference`` wave loop bit-exactly while cutting
wall-clock time — at least 2x on a multi-wave configuration.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _common import report
from repro.core import TrainerConfig, VirtualFlowTrainer
from repro.framework import get_workload
from repro.hardware import PerfModel, get_spec
from repro.utils.validation import power_of_two_like_sizes

WORKLOADS = ("resnet50_imagenet", "transformer_wmt", "bert_large_glue")
VNS = (1, 2, 4, 8, 16, 32)


def _max_wave(wl, spec) -> int:
    cap = wl.footprint.max_batch(spec.memory_bytes, wl.optimizer_slots)
    return power_of_two_like_sizes(cap)[-1]


def _run():
    perf = PerfModel()
    spec = get_spec("RTX2080Ti")
    memory = {}
    throughput = {}
    for name in WORKLOADS:
        wl = get_workload(name)
        b = _max_wave(wl, spec)
        vanilla_mem = wl.footprint.wave_bytes(b, wl.optimizer_slots,
                                              grad_buffer=False)
        vanilla_tput = b / perf.vanilla_step_time(wl, spec, b)
        memory[name] = [
            wl.footprint.wave_bytes(b, wl.optimizer_slots, grad_buffer=True)
            / vanilla_mem
            for _ in VNS  # constant: the buffer does not scale with VNs
        ]
        throughput[name] = [
            (v * b / perf.device_step_time(wl, spec, [b] * v)) / vanilla_tput
            for v in VNS
        ]
    return memory, throughput


def test_fig17_microbenchmarks(benchmark):
    memory, throughput = benchmark(_run)
    rows = []
    for name in WORKLOADS:
        rows.append([name, "memory"] + [f"{m:.3f}" for m in memory[name]])
        rows.append([name, "throughput"] + [f"{t:.3f}" for t in throughput[name]])
    report("fig17_microbench", ["workload", "metric"] + [f"{v}VN" for v in VNS],
           rows, title="Fig 17: normalized peak memory (top) and throughput "
                       "(bottom) on RTX 2080 Ti",
           notes="paper: BERT memory overhead <= 16.2%, flat in VNs; "
                 "BERT throughput +31.4% at high VN; worst dip -4.2%")
    # Memory: overhead constant in VN count and bounded like the paper.
    for name in WORKLOADS:
        assert len(set(round(m, 9) for m in memory[name])) == 1
        overhead = memory[name][0] - 1
        assert 0 < overhead < 0.20
    big = memory["bert_large_glue"][0] - 1
    assert big == max(m[0] - 1 for m in memory.values())  # scales w/ model size
    # Throughput: large models gain the most from update amortization.
    bert = throughput["bert_large_glue"]
    assert bert[-1] > 1.15          # paper: +31.4%
    assert bert == sorted(bert)     # monotone in VN count
    for name in WORKLOADS:
        assert min(throughput[name]) > 0.90   # worst dip small (paper -4.2%)


# -- execution-backend comparison (host wall-clock, not simulated time) ------

BACKEND_CONFIGS = (
    # (workload, global batch, virtual nodes, devices)
    ("mlp_synthetic", 32, 16, 2),
    ("bert_base_glue", 32, 16, 2),
    ("bert_base_glue", 32, 32, 2),  # 16 waves/device: the fusion sweet spot
)


def _wall_clock(backend: str, workload: str, batch: int, vns: int,
                devices: int, steps: int = 8, reps: int = 3) -> tuple:
    """Best-of-``reps`` seconds/step plus the final parameters."""
    trainer = VirtualFlowTrainer(TrainerConfig(
        workload=workload, global_batch_size=batch, num_virtual_nodes=vns,
        num_devices=devices, dataset_size=2 * batch, backend=backend))
    x = trainer.dataset.x_train[:batch]
    y = trainer.dataset.y_train[:batch]
    trainer.executor.run_step(x, y, epoch=0, step=0)  # warm caches
    best = float("inf")
    step = 1
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(steps):
            trainer.executor.run_step(x, y, epoch=0, step=step)
            step += 1
        best = min(best, (time.perf_counter() - t0) / steps)
    return best, trainer.executor.model.parameters()


def test_fig17_backend_fusion_speedup():
    rows = []
    speedups = {}
    for workload, batch, vns, devices in BACKEND_CONFIGS:
        t_ref, p_ref = _wall_clock("reference", workload, batch, vns, devices)
        t_fused, p_fused = _wall_clock("fused", workload, batch, vns, devices)
        speedup = t_ref / t_fused
        speedups[(workload, vns)] = speedup
        rows.append([workload, f"{vns}VN x {devices}dev",
                     f"{t_ref*1e3:.2f}", f"{t_fused*1e3:.2f}", f"{speedup:.2f}x"])
        # Same trajectory, bit for bit: fusion is a host optimization only.
        for key in p_ref:
            np.testing.assert_array_equal(p_ref[key], p_fused[key])
    report("fig17_backend_fusion",
           ["workload", "config", "reference ms/step", "fused ms/step", "speedup"],
           rows, title="Execution backends: serial reference loop vs fused "
                       "vectorized waves (identical results, host time only)",
           notes="fused must be bit-identical and >= 2x on a multi-wave config")
    # The bit-equality above is the hard guarantee.  Timing gates: fusion is
    # never a slowdown, and on a quiet machine the multi-wave sweet spot
    # clears 2x (measures ~2.3-2.8x locally).  Shared CI runners throttle
    # unpredictably, so the 2x bar is relaxed there — the table is still
    # published for inspection.
    for (workload, vns), speedup in speedups.items():
        assert speedup > 1.05, (
            f"{workload}@{vns}VN: fused slower than reference ({speedup:.2f}x)")
    floor = 1.3 if os.environ.get("CI") else 2.0
    assert max(speedups.values()) > floor, (
        f"no multi-wave config reached {floor}x (best {max(speedups.values()):.2f}x)")
