"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section, prints the same rows/series the paper reports, and saves them under
``benchmarks/results/`` so the numbers survive pytest's output capture.
Assertions check the paper's *shape* (who wins, by roughly what factor),
never absolute numbers — the substrate is a simulator, not the authors'
testbed.

``BENCH_*.json`` convention
---------------------------
Host-performance benchmarks (wall-clock measurements of this repo's own hot
paths, as opposed to simulated-hardware figures) additionally persist a
machine-readable record via :func:`save_bench_json`: one
``benchmarks/results/BENCH_<name>.json`` file per benchmark, containing at
least ``{"benchmark": <name>, "configs": [...], "speedup": <headline>}``.
These files are the repo's performance trajectory — each perf-focused PR
re-runs them so regressions in the fused hot paths are visible as numbers,
not vibes.  CI smoke-runs them with tiny configs to catch breakage early
(see ``bench_arena_fusion.py --smoke``).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Sequence

from repro.utils import format_table

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def report(name: str, headers: Sequence[str], rows: Iterable[Sequence[Any]],
           title: str = "", notes: str = "") -> str:
    """Print and persist one table of benchmark output."""
    table = format_table(headers, rows, title=title)
    text = table if not notes else table + "\n" + notes
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def save_series(name: str, header: str, lines: Iterable[str]) -> None:
    """Persist a free-form series dump (convergence curves, CDFs)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(header + "\n")
        for line in lines:
            fh.write(line + "\n")


def save_bench_json(name: str, payload: Dict[str, Any]) -> str:
    """Persist a machine-readable ``BENCH_<name>.json`` perf record.

    See the module docstring for the convention.  Returns the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump({"benchmark": name, **payload}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
