"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section, prints the same rows/series the paper reports, and saves them under
``benchmarks/results/`` so the numbers survive pytest's output capture.
Assertions check the paper's *shape* (who wins, by roughly what factor),
never absolute numbers — the substrate is a simulator, not the authors'
testbed.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Sequence

from repro.utils import format_table

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def report(name: str, headers: Sequence[str], rows: Iterable[Sequence[Any]],
           title: str = "", notes: str = "") -> str:
    """Print and persist one table of benchmark output."""
    table = format_table(headers, rows, title=title)
    text = table if not notes else table + "\n" + notes
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def save_series(name: str, header: str, lines: Iterable[str]) -> None:
    """Persist a free-form series dump (convergence curves, CDFs)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(header + "\n")
        for line in lines:
            fh.write(line + "\n")
