"""One driver for every CI benchmark smoke and perf gate.

CI used to carry one copy-pasted workflow step per benchmark; adding a
benchmark meant editing the workflow in several places.  Now a benchmark is
a one-line :data:`GATES` registration here, and the workflow runs exactly
two steps::

    python run_gates.py --smoke   # tiny configs, breakage detection
    python run_gates.py --gate    # the real speedup/correctness gates

Both modes run each benchmark as a subprocess from this directory (smokes
via ``python bench_<x>.py --smoke``, gates via ``pytest bench_<x>.py``) with
BLAS threading pinned to one thread unless the caller overrides it — shared
CI runners oversubscribe cores, and unpinned OpenBLAS turns every wall-clock
measurement into noise.  Wall-clock gates additionally get **one retry**: a
throttled runner can flake a legitimate speedup threshold once, but a real
regression fails twice.  Deterministic gates (simulated-time benchmarks)
never retry — a failure there is a real bug by construction.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))

# BLAS/threading pins applied to every child unless already set by the
# caller (explicit env always wins).
THREAD_PINS = {
    "OMP_NUM_THREADS": "1",
    "OPENBLAS_NUM_THREADS": "1",
    "MKL_NUM_THREADS": "1",
}


@dataclass(frozen=True)
class Gate:
    """One registered benchmark.

    ``smoke``: the script supports ``--smoke`` (tiny config, no gate).
    ``gate``: the script carries pytest gate tests.
    ``wall_clock``: the gate asserts host wall-clock speedups, so shared-
    runner noise is possible and the driver allows one retry; simulated-time
    gates are deterministic and never retry.
    """

    name: str
    script: str
    smoke: bool = True
    gate: bool = True
    wall_clock: bool = True


# Adding a benchmark to CI is this one line (plus the script itself).
GATES: Tuple[Gate, ...] = (
    Gate("arena_fusion", "bench_arena_fusion.py"),
    Gate("chaos_goodput", "bench_chaos_goodput.py", wall_clock=False),
    Gate("cosched_harvest", "bench_cosched_harvest.py", wall_clock=False),
    Gate("domain_blast", "bench_domain_blast.py", wall_clock=False),
    Gate("fig17_microbench", "bench_fig17_microbench.py", smoke=False),
    Gate("fused_coverage", "bench_fused_coverage.py"),
    Gate("gateway_throughput", "bench_gateway_throughput.py"),
    Gate("runtime_throughput", "bench_runtime_throughput.py"),
    Gate("serving_slo", "bench_serving_slo.py", wall_clock=False),
    Gate("tenant_fairness", "bench_tenant_fairness.py", wall_clock=False),
)


def _child_env() -> dict:
    env = dict(os.environ)
    for key, value in THREAD_PINS.items():
        env.setdefault(key, value)
    env.setdefault("PYTHONPATH", os.path.join(HERE, os.pardir, "src"))
    return env


def _run(argv: Sequence[str]) -> int:
    print(f"$ {' '.join(argv)}", flush=True)
    return subprocess.call(list(argv), cwd=HERE, env=_child_env())


def _select(names: Sequence[str]) -> List[Gate]:
    if not names:
        return list(GATES)
    by_name = {g.name: g for g in GATES}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise SystemExit(
            f"unknown benchmark(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(by_name))}")
    return [by_name[n] for n in names]


def run_smoke(names: Sequence[str]) -> int:
    failures = 0
    for gate in _select(names):
        if not gate.smoke:
            continue
        if _run([sys.executable, gate.script, "--smoke"]) != 0:
            print(f"SMOKE FAILED: {gate.name}", file=sys.stderr)
            failures += 1
    return failures


def run_gates(names: Sequence[str]) -> int:
    failures = 0
    for gate in _select(names):
        if not gate.gate:
            continue
        rc = _run([sys.executable, "-m", "pytest", "-x", "-q", gate.script])
        if rc != 0 and gate.wall_clock:
            print(f"{gate.name}: wall-clock gate failed once; retrying "
                  f"(shared-runner noise tolerance)", flush=True)
            rc = _run([sys.executable, "-m", "pytest", "-x", "-q", gate.script])
            if rc != 0:
                # Distinct from the first-failure line: a second failure is
                # past the noise tolerance, i.e. a real regression.
                print(f"{gate.name}: failed after retry — treating as a "
                      f"real regression, not runner noise", file=sys.stderr)
        if rc != 0:
            print(f"GATE FAILED: {gate.name}", file=sys.stderr)
            failures += 1
    return failures


def check_registry() -> int:
    """Every benchmark that emits a ``BENCH_*.json`` must be a registered
    gate.  A perf record nobody runs in CI silently goes stale; this check
    turns the omission into a CI failure with a one-line fix."""
    registered = {g.script for g in GATES}
    missing = []
    for fname in sorted(os.listdir(HERE)):
        if not (fname.startswith("bench_") and fname.endswith(".py")):
            continue
        with open(os.path.join(HERE, fname)) as fh:
            emits = "save_bench_json(" in fh.read()
        if emits and fname not in registered:
            missing.append(fname)
    if missing:
        for fname in missing:
            print(f"UNREGISTERED: {fname} emits a BENCH_*.json but is not "
                  f"in run_gates.GATES", file=sys.stderr)
        return len(missing)
    print(f"registry check: every BENCH_*.json emitter is registered "
          f"({len(registered)} gates)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--list", action="store_true",
                      help="print the registered benchmarks")
    mode.add_argument("--smoke", action="store_true",
                      help="run every smoke (tiny configs, no perf gates)")
    mode.add_argument("--gate", action="store_true",
                      help="run every perf/correctness gate via pytest")
    mode.add_argument("--check-registry", action="store_true",
                      help="fail if any BENCH_*.json emitter is missing "
                           "from the gate registry")
    parser.add_argument("names", nargs="*",
                        help="restrict to these registered benchmarks")
    args = parser.parse_args(argv)

    if args.list:
        for gate in GATES:
            kinds = [k for k, on in (("smoke", gate.smoke), ("gate", gate.gate))
                     if on]
            noise = "wall-clock (1 retry)" if gate.wall_clock else "deterministic"
            print(f"{gate.name:18s} {gate.script:28s} "
                  f"[{', '.join(kinds)}; {noise}]")
        return 0
    if args.check_registry:
        return 1 if check_registry() else 0
    failures = run_smoke(args.names) if args.smoke else run_gates(args.names)
    if failures:
        print(f"{failures} benchmark step(s) failed", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
