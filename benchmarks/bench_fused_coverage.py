"""Fused-backend workload coverage: the ResNet wave hot path, ref vs fused.

PR 1 vectorized equal-size waves for stateless models; the stateful frontier
(Conv2D + BatchNorm, i.e. every ResNet-style figure in the paper) still ran
the serial reference loop — O(V) forwards/backwards plus per-wave
``state_dict`` deep copies per step.  With the segmented kernels the fused
backend now covers the *entire* built-in workload zoo with no training
fallback, so this benchmark (a) asserts that coverage — ``can_fuse`` must be
True for every registered workload — and (b) measures the host wall-clock
win on the ResNet wave hot path at many virtual nodes, the regime the
paper's Table 1 / Fig 8 / Fig 2 workloads live in.

Results are bit-identical by construction (asserted by
``tests/core/test_backends.py``); this file is purely about wall clock and
coverage.  Results persist as ``results/fused_coverage.txt`` (table) and
``results/BENCH_fused_coverage.json`` (machine-readable perf record — see
the ``BENCH_*.json`` convention in ``_common.py``).  ``--smoke`` runs a tiny
config with no speedup gate, for CI breakage detection.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

from _common import report, save_bench_json
from repro.core import FusedBackend, TrainerConfig, VirtualFlowTrainer
from repro.core.backends import TrainStep
from repro.core.backends.vectorized import supports_inference, supports_training
from repro.core.sharding import shard_batch
from repro.core.state import VirtualNodeState
from repro.core.virtual_node import VirtualNodeSet
from repro.data import make_dataset
from repro.framework import WORKLOADS, SoftmaxCrossEntropy, get_workload

# (workload, virtual nodes, per-node batch) — headline config first.
CONFIGS = (
    ("resnet56_cifar10", 16, 2),
    ("resnet56_cifar10", 32, 2),
    ("resnet50_imagenet", 16, 2),
)
SMOKE_CONFIGS = (("resnet56_cifar10", 4, 2),)


def _best_of(fn, steps: int, reps: int) -> float:
    """Best-of-``reps`` mean seconds per call over ``steps`` calls."""
    fn()  # warm
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(steps):
            fn()
        best = min(best, (time.perf_counter() - t0) / steps)
    return best


def coverage_matrix() -> List[Dict]:
    """``can_fuse`` / vectorized-inference coverage for every workload."""
    rows = []
    fused = FusedBackend()
    for name in sorted(WORKLOADS):
        workload = get_workload(name)
        model = workload.build_model(0)
        vn_set = VirtualNodeSet.even(8, 4)
        ds = make_dataset(workload.dataset, n=16, seed=0)
        step = TrainStep(
            model=model, loss_fn=SoftmaxCrossEntropy(), vn_set=vn_set,
            vn_states=[VirtualNodeState(i, {k: v.copy() for k, v in
                                            model.state_dict().items()})
                       for i in range(4)],
            shards=shard_batch(vn_set, ds.x_train[:8], ds.y_train[:8]),
            seed=0, epoch=0, step=0)
        rows.append({
            "workload": name,
            "can_fuse_training": bool(fused.can_fuse(step)),
            "vectorized_inference": bool(supports_inference(model)),
            "training_kernels": bool(
                supports_training(model, SoftmaxCrossEntropy())),
        })
    return rows


def _step_times(workload_name: str, num_vns: int, per_vn_batch: int,
                steps: int, reps: int) -> Dict[str, float]:
    """Seconds per executor step, serial reference loop vs fused pass."""
    out = {}
    batch = num_vns * per_vn_batch
    for key, backend in (("reference_s", "reference"), ("fused_s", "fused")):
        trainer = VirtualFlowTrainer(TrainerConfig(
            workload=workload_name, global_batch_size=batch,
            num_virtual_nodes=num_vns, num_devices=2,
            dataset_size=2 * batch, backend=backend))
        x = trainer.dataset.x_train[:batch]
        y = trainer.dataset.y_train[:batch]
        counter = {"step": 0}

        def one_step() -> None:
            trainer.executor.run_step(x, y, epoch=0, step=counter["step"])
            counter["step"] += 1

        out[key] = _best_of(one_step, steps, reps)
    return out


def run(smoke: bool = False) -> Dict:
    coverage = coverage_matrix()
    uncovered = [row["workload"] for row in coverage
                 if not (row["can_fuse_training"] and row["vectorized_inference"])]
    assert not uncovered, f"workloads outside the fused path: {uncovered}"

    configs = SMOKE_CONFIGS if smoke else CONFIGS
    steps = 2 if smoke else 10
    reps = 1 if smoke else 3
    rows: List[List[str]] = []
    records: List[Dict] = []
    for workload_name, num_vns, per_vn_batch in configs:
        times = _step_times(workload_name, num_vns, per_vn_batch, steps, reps)
        speedup = times["reference_s"] / times["fused_s"]
        rows.append([
            workload_name, f"{num_vns}VN", f"{num_vns * per_vn_batch}",
            f"{times['reference_s']*1e3:.3f}", f"{times['fused_s']*1e3:.3f}",
            f"{speedup:.2f}x",
        ])
        records.append({
            "workload": workload_name,
            "virtual_nodes": num_vns,
            "global_batch": num_vns * per_vn_batch,
            "reference_ms": times["reference_s"] * 1e3,
            "fused_ms": times["fused_s"] * 1e3,
            "speedup": speedup,
        })
    headline = records[0]["speedup"]
    report("fused_coverage",
           ["workload", "config", "batch", "reference ms/step",
            "fused ms/step", "speedup"],
           rows,
           title="Fused-backend coverage: ResNet wave hot path, serial "
                 "reference loop vs one segmented vectorized pass "
                 "(bit-identical results)",
           notes="can_fuse=True for all "
                 f"{len(coverage)} registered workloads; target >= 2x on "
                 "the 16+ virtual-node ResNet configs")
    payload = {
        "smoke": smoke,
        "coverage": coverage,
        "configs": records,
        "speedup": headline,
    }
    path = save_bench_json("fused_coverage", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


def test_fused_coverage_speedup():
    """Every workload fuses; the ResNet wave hot path must clear 2x.

    Bit-identity is asserted by the equivalence suite; this gate is about
    coverage plus wall clock.  Shared CI runners throttle unpredictably, so
    the bar is relaxed there (the table is still published for inspection).
    """
    payload = run(smoke=False)
    for record in payload["configs"]:
        assert record["speedup"] > 1.05, (
            f"{record['workload']}@{record['virtual_nodes']}VN: fused path "
            f"slower than the serial loop ({record['speedup']:.2f}x)")
    floor = 1.5 if os.environ.get("CI") else 2.0
    assert payload["speedup"] > floor, (
        f"headline ResNet wave config below {floor}x "
        f"({payload['speedup']:.2f}x)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config, no speedup gate (CI breakage check)")
    args = parser.parse_args(argv)
    run(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
