"""Tenant-fairness frontier: WFQ vs FIFO under a best-effort flood.

PR 9's multi-tenant gateway claims that weighted fair queueing — not
admission control alone — is what protects a premium tenant's SLO from a
misbehaving neighbour.  This benchmark pins that claim as an overload
frontier.  One premium tenant offers a steady 250 req/s (inside its
token-bucket quota, weight 8, 35 ms p99 SLO) while a best-effort tenant
floods a single-device pool at rates swept from comfortable to 8000 req/s.
Both tenants run through the identical :class:`ServingGateway` with the
identical depth-capped admission policy; the *only* difference between the
two cells at each flood level is the dispatcher:

* ``wfq``  — the gateway's weighted fair queue: the premium tenant's
  finish tags advance 8x slower, so its requests jump the flood backlog
  and its p99 stays a few milliseconds regardless of the flood rate —
  while the flood tenant still meets its own 150 ms best-effort SLO
  (fairness, not starvation);
* ``fifo`` — the pre-tenancy queue: premium requests wait behind the
  whole depth-capped backlog, so once the flood exceeds the pool's
  capacity the premium p99 blows through its SLO and attainment
  collapses.

The frontier gates: WFQ holds premium attainment >= 95% at **every** flood
level; FIFO collapses below the floor at every overloaded level.  The
hardest WFQ cell also writes the durable request journal and the gate
asserts :func:`repro.serving.audit_journal` reproduces the live per-tenant
digests **exactly** — the ``repro audit`` path is bit-for-bit, not close.

Everything is simulated time, deterministic in the pinned seed, and
re-verified under both event-queue backends — so the gates have no noise
tolerance and never retry.  Results persist as
``results/tenant_fairness.txt``, ``results/BENCH_tenant_fairness.json``,
and the journal as ``results/tenant_fairness_journal.jsonl``.  ``--smoke``
runs a tiny trace with no gate, for CI breakage detection.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from _common import RESULTS_DIR, report, save_bench_json
from repro.elastic import ServingPhase
from repro.serving import TenantRegistry, audit_journal, serve_workload
from repro.serving.batcher import AdmissionPolicy

WORKLOAD = "mlp_synthetic"
POOL = 1                 # one device: capacity ~4.1k req/s, so the sweep
                         # crosses from underload into 2x overload
PREM_RATE = 250.0        # req/s, constant across every flood level
PREM_QUOTA = 300.0       # req/s: the premium tenant stays inside quota
PREM_WEIGHT = 8.0
MAX_BATCH = 8
MAX_WAIT = 0.002
DURATION = 2.0
SEED = 7
ATTAIN_FLOOR = 0.95
QUEUE_DEPTH = 256        # admission cap: bounds the backlog FIFO premium
                         # requests wait behind (~64 ms — past the 35 ms SLO)

# Best-effort flood rates (req/s).  The pool absorbs the first two; the
# last two are past saturation, where the dispatcher decides who pays.
FLOODS = (1000.0, 2000.0, 4000.0, 8000.0)
OVERLOADED = (4000.0, 8000.0)

ADMISSION = AdmissionPolicy(max_queue_depth=QUEUE_DEPTH,
                            max_estimated_wait=None)

JOURNAL_PATH = os.path.join(RESULTS_DIR, "tenant_fairness_journal.jsonl")


def _registry(flood: float) -> TenantRegistry:
    """Premium at a fixed rate; the flood tenant's share carries the sweep.

    ``share`` values are the per-tenant load split of the total phase rate,
    so premium's arrival stream is identical at every flood level (its own
    seed domain, its own 250 req/s trace).
    """
    return TenantRegistry.from_spec(
        f"prem:class=premium,weight={PREM_WEIGHT:g},quota={PREM_QUOTA:g},"
        f"share={PREM_RATE:g};"
        f"flood:class=best_effort,weight=1,share={flood:g}")


def _run(dispatcher: str, flood: float, smoke: bool,
         queue_backend: Optional[str] = None,
         journal: Optional[str] = None):
    duration = 0.5 if smoke else DURATION
    return serve_workload(
        WORKLOAD, [ServingPhase(duration, PREM_RATE + flood)],
        max_batch=MAX_BATCH, max_wait=MAX_WAIT, pool_devices=POOL,
        seed=SEED, tenants=_registry(flood), admission=ADMISSION,
        dispatcher=dispatcher, journal=journal, queue_backend=queue_backend)


def _cell(dispatcher: str, flood: float, smoke: bool,
          queue_backend: Optional[str] = None) -> Dict:
    rep = _run(dispatcher, flood, smoke, queue_backend=queue_backend)
    prem = rep.tenants["prem"]
    best = rep.tenants["flood"]
    return {
        "prem_p99_ms": prem["latency_p99_ms"],
        "prem_attainment": prem["slo_attainment"],
        "prem_holds_slo": prem["slo_attainment"] >= ATTAIN_FLOOR,
        "prem_shed": prem["shed"],
        "flood_p99_ms": best["latency_p99_ms"],
        "flood_attainment": best["slo_attainment"],
        "flood_shed_rate": best["shed_rate"],
        "requests": len(rep.records),
    }


def run(smoke: bool = False) -> Dict:
    floods = (FLOODS[0], FLOODS[-1]) if smoke else FLOODS
    frontier: List[Dict] = []
    rows: List[List[str]] = []
    for flood in floods:
        cells = {d: _cell(d, flood, smoke) for d in ("wfq", "fifo")}
        for dispatcher, cell in cells.items():
            rows.append([
                f"{flood:g}", dispatcher,
                f"{cell['prem_p99_ms']:.1f}",
                f"{cell['prem_attainment']:.1%}",
                f"{int(cell['prem_shed'])}",
                f"{cell['flood_p99_ms']:.1f}",
                f"{cell['flood_attainment']:.1%}",
                f"{cell['flood_shed_rate']:.1%}",
            ])
        frontier.append({"flood_rps": flood, "cells": cells})

    # The hardest WFQ cell once more, journalled: the offline audit must
    # reproduce the live per-tenant digests bit-for-bit.
    rep = _run("wfq", floods[-1], smoke, journal=JOURNAL_PATH)
    audit = audit_journal(JOURNAL_PATH)
    audit_ok = audit["tenants"] == rep.tenants

    report("tenant_fairness",
           ["flood req/s", "dispatcher", "prem p99 ms", "prem attain",
            "prem shed", "flood p99 ms", "flood attain", "flood shed"],
           rows,
           title=f"Tenant-fairness frontier: premium {PREM_RATE:g} req/s "
                 f"(weight {PREM_WEIGHT:g}, quota {PREM_QUOTA:g} req/s, "
                 f"35 ms SLO) vs a best-effort flood on {POOL} V100, "
                 f"depth-capped admission ({QUEUE_DEPTH})",
           notes=f"wfq must hold premium attainment >= {ATTAIN_FLOOR:.0%} "
                 f"at every flood level while the flood tenant still meets "
                 f"its 150 ms SLO; fifo collapses past saturation.  journal "
                 f"audit parity: {'exact' if audit_ok else 'MISMATCH'}")
    payload = {
        "smoke": smoke,
        "workload": WORKLOAD,
        "pool_devices": POOL,
        "prem_rate_rps": PREM_RATE,
        "prem_quota_rps": PREM_QUOTA,
        "prem_weight": PREM_WEIGHT,
        "queue_depth": QUEUE_DEPTH,
        "attain_floor": ATTAIN_FLOOR,
        "seed": SEED,
        "floods": list(floods),
        "frontier": frontier,
        "audit": {
            "journal": os.path.relpath(JOURNAL_PATH, RESULTS_DIR),
            "requests": audit["requests"],
            "shed": audit["shed"],
            "matches_live": audit_ok,
        },
    }
    path = save_bench_json("tenant_fairness", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


# One full frontier run shared by every gate test (rerunning in smoke mode
# would clobber the published results files with tiny-trace numbers).
_FULL_PAYLOAD: Dict = {}


def _full_payload() -> Dict:
    if not _FULL_PAYLOAD:
        _FULL_PAYLOAD.update(run(smoke=False))
    return _FULL_PAYLOAD


def test_wfq_holds_premium_slo_at_every_flood():
    """WFQ keeps the premium tenant inside its SLO at every flood level —
    without starving the flood tenant out of its own best-effort SLO —
    while FIFO's premium attainment collapses at every overloaded level.
    Deterministic — no retries."""
    payload = _full_payload()
    for point in payload["frontier"]:
        flood = point["flood_rps"]
        wfq = point["cells"]["wfq"]
        assert wfq["prem_attainment"] >= payload["attain_floor"], (
            f"WFQ lost the premium SLO at flood {flood:g} req/s: "
            f"attainment {wfq['prem_attainment']:.1%}")
        assert wfq["prem_shed"] == 0, (
            f"premium was shed within quota at flood {flood:g} req/s")
        assert wfq["flood_attainment"] >= payload["attain_floor"], (
            f"WFQ starved the best-effort tenant at flood {flood:g} req/s: "
            f"attainment {wfq['flood_attainment']:.1%}")
    for point in payload["frontier"]:
        if point["flood_rps"] not in OVERLOADED:
            continue
        fifo = point["cells"]["fifo"]
        assert fifo["prem_attainment"] < payload["attain_floor"], (
            f"FIFO held premium {fifo['prem_attainment']:.1%} at flood "
            f"{point['flood_rps']:g} req/s — the flood is not stressing it")


def test_overload_pays_in_flood_shed_not_premium_latency():
    """Past saturation the flood tenant pays with sheds (monotone in its
    own rate) while WFQ premium p99 stays flat — graceful degradation is
    tenant-attributed, not socialized."""
    payload = _full_payload()
    shed_rates = [p["cells"]["wfq"]["flood_shed_rate"]
                  for p in payload["frontier"]]
    assert all(b >= a for a, b in zip(shed_rates, shed_rates[1:])), (
        f"flood shed rate is not monotone in the flood rate: {shed_rates}")
    assert shed_rates[-1] > 0.0, "the top flood level never shed"
    p99s = [p["cells"]["wfq"]["prem_p99_ms"] for p in payload["frontier"]]
    assert max(p99s) <= 35.0, (
        f"WFQ premium p99 drifted with the flood rate: {p99s}")
    # Identical admission in both cells: the sheds match level for level.
    for point in payload["frontier"]:
        assert (point["cells"]["wfq"]["flood_shed_rate"]
                == point["cells"]["fifo"]["flood_shed_rate"]), (
            f"cells diverge in admission at flood {point['flood_rps']:g}")


def test_journal_audit_reproduces_live_report(tmp_path):
    """The offline journal replay equals the live per-tenant report
    **exactly** — every float bit-identical, no rerun, no report object."""
    payload = _full_payload()
    assert payload["audit"]["matches_live"], (
        "audit_journal diverged from the live gateway report")
    journal = str(tmp_path / "journal.jsonl")
    rep = _run("wfq", FLOODS[-1], smoke=False, journal=journal)
    audit = audit_journal(journal)
    assert audit["tenants"] == rep.tenants
    assert audit["dispatcher"] == "wfq"
    assert audit["requests"] == len(rep.records)
    assert audit["shed"] == len(rep.shed)


def test_tenant_fairness_deterministic_across_backends_and_runs():
    """The hardest cell replays bit-identically: two seeded runs agree, and
    the heap and calendar queue backends agree with both."""
    flood = FLOODS[-1]
    first = _cell("wfq", flood, smoke=False)
    again = _cell("wfq", flood, smoke=False)
    assert first == again, "two seeded runs of the same cell disagree"
    for backend in ("heap", "calendar"):
        cell = _cell("wfq", flood, smoke=False, queue_backend=backend)
        assert cell == first, (
            f"queue backend {backend!r} disagrees with the default run")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config, no frontier gate (CI breakage "
                             "check)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if args.smoke:
        return 0
    ok = payload["audit"]["matches_live"]
    for point in payload["frontier"]:
        if point["cells"]["wfq"]["prem_attainment"] < payload["attain_floor"]:
            ok = False
        if (point["flood_rps"] in OVERLOADED
                and point["cells"]["fifo"]["prem_attainment"]
                >= payload["attain_floor"]):
            ok = False
    if not ok:
        print("WARNING: WFQ did not dominate the tenant-fairness frontier",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
