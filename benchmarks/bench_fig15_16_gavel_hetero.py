"""Figures 15 + 16: extending Gavel with heterogeneous allocations.

Paper (simulation): on a 4xV100 + 8xP100 + 16xK80 cluster running the LAS
policy in 6-minute rounds, allowing heterogeneous allocations cuts average
JCT by up to 29.2% at low load, with the benefit gracefully vanishing at
high arrival rates.  Figure 16 shows an example trace where a job gains 5
idle P100s on top of its 16 K80s (+33.7% throughput).
"""

from __future__ import annotations


from _common import report, save_series
from repro.elastic.trace import generate_trace
from repro.sched import GavelSimulator

CLUSTER = {"V100": 4, "P100": 8, "K80": 16}
RATES = (2, 4, 6, 8, 10, 12)
NUM_JOBS = 14
SEED = 2


def _run():
    results = {}
    example_result = None
    for rate in RATES:
        trace = generate_trace(NUM_JOBS, jobs_per_hour=rate, seed=SEED,
                               target_runtime=2400)
        base = GavelSimulator(CLUSTER, heterogeneous=False).run(trace)
        ht = GavelSimulator(CLUSTER, heterogeneous=True).run(trace)
        results[rate] = (base.avg_jct(), ht.avg_jct())
        if rate == 8:
            example_result = ht  # Fig 16 uses ~8 jobs/hour
    return results, example_result


def test_fig15_16_gavel_heterogeneous(benchmark):
    results, example = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    reductions = {}
    for rate, (base, ht) in results.items():
        red = (base - ht) / base
        reductions[rate] = red
        rows.append([rate, f"{base:.0f}", f"{ht:.0f}", f"{red:+.1%}"])
    report("fig15_gavel_jct", ["jobs/hour", "Gavel JCT", "Gavel+HT JCT", "reduction"],
           rows, title="Fig 15: average JCT vs arrival rate "
                       "(4xV100 + 8xP100 + 16xK80, LAS, 6-min rounds)",
           notes="paper: up to -29.2%, diminishing at high load")
    # Fig 16-style allocation trace for one run.
    lines = []
    for job in example.jobs.values():
        for t, alloc in job.allocation_log:
            if alloc:
                kinds = "+".join(f"{n}x{k}" for k, n in sorted(alloc.items()))
                tag = "HETERO" if len(alloc) > 1 else "homog"
                lines.append(f"t={t:7.0f}s job={job.job_id:2d} {kinds} [{tag}]")
    save_series("fig16_example_trace", "round-by-round allocations", lines)

    # Paper shapes:
    best = max(reductions.values())
    assert best > 0.10                       # meaningful gains exist
    low_load = max(reductions[r] for r in RATES[:3])
    high_load = reductions[RATES[-1]]
    assert low_load > high_load              # benefit diminishes with load
    assert high_load > -0.05                 # graceful fallback, never much worse
    # Fig 16: heterogeneous rounds actually occur in the example trace.
    assert example.hetero_round_fraction() > 0
