"""Ablation: canonical vs device-order gradient reduction.

Design choice under test (DESIGN.md §5): VirtualFlow reduces per-virtual-node
gradients in canonical virtual-node order, making training bit-identical
across mappings.  The ablation reduces per-device partial sums instead
(what a real all-reduce over device groups computes): floating-point
addition is not associative, so the result depends on how virtual nodes are
grouped onto devices — exactly the mapping-dependence the design avoids.
"""

from __future__ import annotations

import numpy as np

from _common import report


def _canonical_sum(grads, weights):
    acc = np.zeros_like(grads[0])
    total = sum(weights)
    for g, w in zip(grads, weights):
        acc += (w / total) * g
    return acc


def _device_grouped_sum(grads, weights, groups):
    """Per-device partial sums, then a cross-device reduction."""
    total = sum(weights)
    partials = []
    for group in groups:
        acc = np.zeros_like(grads[0])
        for i in group:
            acc += weights[i] * grads[i]
        partials.append(acc)
    out = np.zeros_like(grads[0])
    for p in partials:
        out += p
    return out / total


def _run():
    rng = np.random.default_rng(0)
    n_vns = 16
    grads = [rng.standard_normal(4096).astype(np.float32) * 10 ** rng.uniform(-3, 3)
             for _ in range(n_vns)]
    weights = [1.0] * n_vns
    canonical = _canonical_sum(grads, weights)
    mappings = {
        "16 devices (1 VN each)": [[i] for i in range(16)],
        "4 devices (4 VNs each)": [list(range(i, i + 4)) for i in range(0, 16, 4)],
        "2 devices (8 VNs each)": [list(range(0, 8)), list(range(8, 16))],
        "1 device (16 VNs)": [list(range(16))],
    }
    diffs = {}
    for name, groups in mappings.items():
        grouped = _device_grouped_sum(grads, weights, groups)
        diffs[name] = float(np.max(np.abs(grouped - canonical)))
    # Canonical order itself is mapping-independent by construction:
    repeat = _canonical_sum(grads, weights)
    return diffs, float(np.max(np.abs(repeat - canonical)))


def test_ablation_reduction_order(benchmark):
    diffs, canonical_repeat = benchmark(_run)
    rows = [[name, f"{d:.3e}"] for name, d in diffs.items()]
    rows.append(["canonical (any mapping)", f"{canonical_repeat:.3e}"])
    report("ablation_reduction_order",
           ["reduction grouping", "max |diff| vs canonical"], rows,
           title="Ablation: device-grouped float reduction is mapping-dependent",
           notes="the executor therefore reduces in canonical virtual-node "
                 "order, giving bit-identical training across mappings")
    assert canonical_repeat == 0.0
    # At least one device grouping disagrees with canonical at float32.
    assert max(diffs.values()) > 0.0
    # ... and different groupings disagree with each other.
    assert len({round(v, 20) for v in diffs.values()}) > 1
