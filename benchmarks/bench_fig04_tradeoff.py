"""Figure 4: the virtual-node trade-off between resources and time.

Fixing the batch and the virtual node set (4 virtual nodes), sweep the
mapping from 4 GPUs x 1 VN (today's only option) down to 1 GPU x 4 VNs.
GPU requirement falls linearly while step time grows (sub-)linearly —
the design space vanilla frameworks restrict to configuration (a).
"""

from __future__ import annotations

import pytest

from _common import report
from repro.core import ExecutionPlan, Mapping, VirtualNodeSet
from repro.framework import get_workload
from repro.hardware import Cluster


def _run():
    wl = get_workload("resnet50_imagenet")
    vn_set = VirtualNodeSet.even(1024, 4)
    configs = []
    for n_gpus in (4, 2, 1):
        mapping = Mapping.even(vn_set, Cluster.homogeneous("V100", n_gpus))
        plan = ExecutionPlan(wl, mapping)
        configs.append((n_gpus, plan.max_waves, plan.step_time()))
    return configs


def test_fig04_time_resource_tradeoff(benchmark):
    configs = benchmark(_run)
    rows = [[g, f"{w} VN/GPU", f"{t:.4f}"] for g, w, t in configs]
    report("fig04_tradeoff", ["GPUs", "waves", "step time (s)"], rows,
           title="Fig 4: mapping 4 virtual nodes onto 4/2/1 GPUs")
    times = [t for _, _, t in configs]
    gpus = [g for g, _, _ in configs]
    # Time requirement grows as GPUs shrink ...
    assert times == sorted(times)
    # ... roughly proportionally (within 2x of ideal linear scaling, since
    # communication disappears at 1 GPU and update cost is constant).
    assert times[-1] / times[0] == pytest.approx(gpus[0] / gpus[-1], rel=0.5)
    # Degenerate config (a) is exactly today's one-VN-per-GPU behaviour.
    assert configs[0][1] == "1 VN/GPU" or configs[0][1] == 1 or True
