"""Ablation: weighted vs naive gradient synchronization (§5.2).

Design choice under test: VirtualFlow weights each device's local gradient
mean by its example count.  The ablation replaces it with the vanilla
mean-of-means and measures the gradient error on uneven shards — the
paper's 6-vs-2 worked example, at benchmark scale.
"""

from __future__ import annotations

import numpy as np

from _common import report
from repro.core.sync import naive_average, weighted_average
from repro.core.virtual_node import VirtualNodeSet
from repro.core.sharding import shard_batch
from repro.data import make_dataset
from repro.framework import SoftmaxCrossEntropy, get_workload

SPLITS = {
    "even 16:16": [16, 16],
    "mild 24:8": [24, 8],
    "paper 6:2 (x4)": [24, 8],
    "extreme 30:2": [30, 2],
    "three-way 16:12:4": [16, 12, 4],
}


def _gradient_error(sizes):
    """Relative error of naive sync vs the exact global-mean gradient."""
    wl = get_workload("mlp_synthetic")
    model = wl.build_model(0)
    loss_fn = SoftmaxCrossEntropy()
    ds = make_dataset("synthetic_vectors", n=256, seed=0)
    batch = sum(sizes)
    x, y = ds.x_train[:batch], ds.y_train[:batch]

    vn_set = VirtualNodeSet.uneven(sizes)
    contributions = []
    for node, (xs, ys) in zip(vn_set, shard_batch(vn_set, x, y)):
        logits = model.forward(xs, training=False)
        loss_fn.forward(logits, ys)
        model.zero_grad()
        model.backward(loss_fn.backward())
        contributions.append(
            ({k: v.copy() for k, v in model.gradients().items()},
             float(node.batch_size)))

    # Ground truth: one pass over the whole batch.
    logits = model.forward(x, training=False)
    loss_fn.forward(logits, y)
    model.zero_grad()
    model.backward(loss_fn.backward())
    exact = {k: v.copy() for k, v in model.gradients().items()}

    def rel_err(est):
        num = np.sqrt(sum(np.sum((est[k] - exact[k]) ** 2) for k in exact))
        den = np.sqrt(sum(np.sum(exact[k] ** 2) for k in exact))
        return float(num / den)

    return rel_err(weighted_average(contributions)), rel_err(naive_average(contributions))


def _run():
    return {name: _gradient_error(sizes) for name, sizes in SPLITS.items()}


def test_ablation_weighted_sync(benchmark):
    errors = benchmark(_run)
    rows = [[name, f"{w:.2e}", f"{n:.2e}"]
            for name, (w, n) in errors.items()]
    report("ablation_weighted_sync",
           ["shard split", "weighted sync error", "naive sync error"], rows,
           title="Ablation: gradient error vs the exact global mean (§5.2)",
           notes="weighted sync is exact for ANY split; naive averaging is "
                 "only correct for even splits")
    for name, (weighted_err, naive_err) in errors.items():
        assert weighted_err < 1e-12  # always exact
        if "even" not in name:
            assert naive_err > 1e-3   # meaningfully wrong on uneven shards
            assert naive_err > weighted_err * 1e6
        else:
            assert naive_err < 1e-12  # degenerate case: both exact
    # Error grows with skew.
    assert errors["extreme 30:2"][1] > errors["mild 24:8"][1]
