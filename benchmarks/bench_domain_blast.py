"""Domain-blast frontier: load shedding vs blast radius under rack wipes.

PR 7's chaos benchmark injected *independent* crashes; real clusters fail in
correlated blast radii — a PDU trip or a ToR switch takes a whole rack at
one instant.  This benchmark sweeps the failure-domain **blast radius** over
one fixed 8-device pool (8 racks of 1, 4 racks of 2, 2 racks of 4) and, at
each radius, wipes the rack holding the serving deployment's devices while
the trace runs its load spike.  Two routers face the identical wipe:

* ``noshed`` — the plain static router: every arrival is admitted, so the
  requests that pile up behind the outage all blow the p99 when the rack
  revives and the backlog drains;
* ``shed``   — the same router behind an :class:`AdmissionPolicy`
  (queue-depth + estimated-wait thresholds, brownout): arrivals that are
  already doomed are rejected at the door, so the requests actually
  admitted still meet the SLO.

The frontier claim: the shedding router holds >= 95% SLO attainment on
admitted requests at *every* blast radius, while the no-shedding baseline
collapses once the wipe covers the whole deployment — graceful degradation
measured as a shed rate, not a latency explosion.  A derate step (ECC
throttle on the first revived device) rides along so the brownout path and
the co-scheduler's derate-aware budget arbitration are exercised in the
same runs.

Everything is simulated time, deterministic in the pinned seeds, and
re-verified cell-for-cell under both queue backends — so the gates have no
noise tolerance and never retry.  Results persist as
``results/domain_blast.txt`` and ``results/BENCH_domain_blast.json``.
``--smoke`` runs a tiny trace with no gate, for CI breakage detection.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from _common import report, save_bench_json
from repro.chaos import (ECCThrottle, FailureDomainTopology, FaultPlan,
                         domain_wipe_events)
from repro.core import RecoveryPolicy
from repro.elastic import spike_phases
from repro.sched import resident_training_jobs, run_cosched
from repro.serving.batcher import AdmissionPolicy

WORKLOAD = "mlp_synthetic"
TRAIN_WORKLOAD = "resnet56_cifar10"
POOL = 8
SERVING = 4              # static serving split: devices 0..3, training 4..7
SLO_P99 = 0.035          # seconds — the 35 ms frontier
BASE_RATE = 400.0        # req/s; the spike multiplies this
SPIKE = 2.0
MAX_BATCH = 16
MAX_WAIT = 0.002
RESIZE_DELAY = 0.25
TRAIN_JOBS = 2
TRAIN_DEMAND = 4
SEED = 1
MTTR_WINDOW = 1.2        # seconds the wiped rack stays dark
DERATE = ECCThrottle(speed=0.7, duration_s=1.0)
ATTAIN_FLOOR = 0.95

# Blast radius -> rack shape over the same 8 devices.  Rack 0 always holds
# the serving deployment's lowest device ids, so the wipe hits serving with
# exactly `radius` devices at once (radius 4 = the whole deployment).
RADII = (1, 2, 4)

SHED_POLICY = AdmissionPolicy(max_queue_depth=48, max_estimated_wait=0.025,
                              brownout=True)
RECOVERY = RecoveryPolicy(mode="migrate")


def _phases(smoke: bool):
    if smoke:
        return spike_phases(BASE_RATE, SPIKE, base_duration=1.0,
                            spike_duration=0.5)
    return spike_phases(BASE_RATE, SPIKE, base_duration=3.0,
                        spike_duration=1.0)


def _topology(radius: int) -> FailureDomainTopology:
    return FailureDomainTopology.regular(POOL // radius, radius)


def _plan(radius: int, smoke: bool) -> FaultPlan:
    """Wipe rack 0 mid-trace, then ECC-throttle its first device on revive.

    The wipe lands during the base load before the spike; the rack comes
    back ``MTTR_WINDOW`` later (inside the spike for the full trace), and
    the freshly revived device runs derated — the post-power-trip thermal
    stress that arms the brownout path.
    """
    topology = _topology(radius)
    wipe_at = 0.4 if smoke else 2.5
    repair = wipe_at + (0.5 if smoke else MTTR_WINDOW)
    events = domain_wipe_events(topology, "rack", 0, wipe_at, repair)
    events.extend(DERATE.events(topology.members("rack", 0)[0], repair))
    return FaultPlan.from_events(
        events, description=f"rack wipe, blast radius {radius}",
        topology=topology, min_healthy=1)


def _run_policy(policy: str, radius: int, smoke: bool,
                queue_backend: Optional[str] = None):
    train_specs = resident_training_jobs(TRAIN_JOBS, demand_gpus=TRAIN_DEMAND,
                                         workload=TRAIN_WORKLOAD)
    return run_cosched(
        WORKLOAD, _phases(smoke), train_specs,
        pool_devices=POOL, max_batch=MAX_BATCH, max_wait=MAX_WAIT,
        initial_serving=SERVING, autoscale=False,
        resize_delay=RESIZE_DELAY, seed=SEED,
        fault_plan=_plan(radius, smoke), recovery=RECOVERY,
        topology=_topology(radius),
        admission=SHED_POLICY if policy == "shed" else None,
        queue_backend=queue_backend)


def _cell(policy: str, radius: int, smoke: bool,
          queue_backend: Optional[str] = None) -> Dict:
    rep = _run_policy(policy, radius, smoke, queue_backend=queue_backend)
    summary = rep.summary(slo_p99=SLO_P99)
    chaos = rep.chaos or {}
    return {
        "p99_ms": summary["serving_latency_p99_ms"],
        "slo_attainment": summary["serving_slo_attainment"],
        "holds_slo": summary["serving_slo_attainment"] >= ATTAIN_FLOOR,
        "requests": summary["serving_requests"],
        "offered": summary["serving_offered"],
        "shed_requests": summary["serving_shed_requests"],
        "shed_rate": summary["serving_shed_rate"],
        "brownout_batches": summary["serving_brownout_batches"],
        "train_goodput_sps": summary["train_goodput_sps"],
        "requeued_requests": chaos.get("requeued_requests", 0),
        "derate_events": chaos.get("derate_events", 0),
    }


def run(smoke: bool = False) -> Dict:
    radii = (RADII[0], RADII[-1]) if smoke else RADII
    frontier: List[Dict] = []
    rows: List[List[str]] = []
    for radius in radii:
        cells = {policy: _cell(policy, radius, smoke)
                 for policy in ("noshed", "shed")}
        for policy, cell in cells.items():
            rows.append([
                str(radius), policy,
                f"{cell['p99_ms']:.1f}",
                f"{cell['slo_attainment']:.1%}",
                f"{int(cell['shed_requests'])}",
                f"{cell['shed_rate']:.1%}",
                f"{int(cell['brownout_batches'])}",
                f"{cell['train_goodput_sps']:.1f}",
            ])
        frontier.append({"blast_radius": radius, "cells": cells})

    report("domain_blast",
           ["radius", "policy", "p99 ms", "SLO attain", "shed", "shed rate",
            "brownouts", "train steps/s"],
           rows,
           title=f"Domain-blast frontier: {WORKLOAD} static-{SERVING} "
                 f"serving + {TRAIN_JOBS}x{TRAIN_WORKLOAD} on one pool of "
                 f"{POOL} V100s; rack 0 wiped mid-trace "
                 f"({MTTR_WINDOW:g}s outage), ECC derate on revive",
           notes=f"shed admission (depth {SHED_POLICY.max_queue_depth}, "
                 f"wait {SHED_POLICY.max_estimated_wait*1e3:g} ms, brownout)"
                 f" must hold attainment >= {ATTAIN_FLOOR:.0%} on admitted "
                 f"requests at every radius; the no-shedding baseline "
                 f"collapses once the wipe covers the deployment")
    payload = {
        "smoke": smoke,
        "workload": WORKLOAD,
        "train_workload": TRAIN_WORKLOAD,
        "pool_devices": POOL,
        "serving_devices": SERVING,
        "slo_p99_ms": SLO_P99 * 1e3,
        "attain_floor": ATTAIN_FLOOR,
        "outage_s": MTTR_WINDOW,
        "seed": SEED,
        "radii": list(radii),
        "frontier": frontier,
    }
    path = save_bench_json("domain_blast", payload)
    print(f"wrote {os.path.relpath(path, os.getcwd())}")
    return payload


# One full frontier run shared by every gate test (rerunning in smoke mode
# would clobber the published results files with tiny-trace numbers).
_FULL_PAYLOAD: Dict = {}


def _full_payload() -> Dict:
    if not _FULL_PAYLOAD:
        _FULL_PAYLOAD.update(run(smoke=False))
    return _FULL_PAYLOAD


def test_shedding_holds_slo_at_every_radius():
    """The shedding router holds the attainment floor on admitted requests
    at every blast radius; the no-shedding baseline collapses once the wipe
    covers the whole deployment.  Deterministic — no retries."""
    payload = _full_payload()
    for point in payload["frontier"]:
        radius = point["blast_radius"]
        shed = point["cells"]["shed"]
        assert shed["slo_attainment"] >= payload["attain_floor"], (
            f"shedding router lost the SLO at blast radius {radius}: "
            f"attainment {shed['slo_attainment']:.1%}")
    worst = payload["frontier"][-1]
    noshed = worst["cells"]["noshed"]
    assert noshed["slo_attainment"] < payload["attain_floor"], (
        f"no-shedding baseline held {noshed['slo_attainment']:.1%} at blast "
        f"radius {worst['blast_radius']} — the wipe is not stressing it")


def test_shed_rate_grows_with_blast_radius():
    """Graceful degradation is visible as shed rate, monotone in the blast
    radius, and the brownout policy actually fires under the derate."""
    payload = _full_payload()
    rates = [p["cells"]["shed"]["shed_rate"] for p in payload["frontier"]]
    assert all(b >= a for a, b in zip(rates, rates[1:])), (
        f"shed rate is not monotone in blast radius: {rates}")
    # A 1-device wipe needs no shedding (rate 0 is the graceful floor); the
    # whole-deployment wipe must shed meaningfully.
    assert rates[-1] > rates[0], (
        f"shed rate does not grow with blast radius: {rates}")
    assert rates[-1] > 0.0
    for point in payload["frontier"]:
        shed = point["cells"]["shed"]
        assert shed["brownout_batches"] > 0, (
            f"brownout never engaged at radius {point['blast_radius']} "
            f"despite the revive derate")
        assert point["cells"]["noshed"]["shed_requests"] == 0


def test_domain_blast_deterministic_across_backends_and_runs():
    """The hardest cell replays bit-identically: two seeded runs agree, and
    the heap and calendar queue backends agree with both."""
    radius = RADII[-1]
    first = _cell("shed", radius, smoke=False)
    again = _cell("shed", radius, smoke=False)
    assert first == again, "two seeded runs of the same cell disagree"
    for backend in ("heap", "calendar"):
        cell = _cell("shed", radius, smoke=False, queue_backend=backend)
        assert cell == first, (
            f"queue backend {backend!r} disagrees with the default run")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny config, no frontier gate (CI breakage "
                             "check)")
    args = parser.parse_args(argv)
    payload = run(smoke=args.smoke)
    if args.smoke:
        return 0
    ok = True
    for point in payload["frontier"]:
        if point["cells"]["shed"]["slo_attainment"] < payload["attain_floor"]:
            ok = False
    if payload["frontier"][-1]["cells"]["noshed"]["slo_attainment"] >= \
            payload["attain_floor"]:
        ok = False
    if not ok:
        print("WARNING: shedding did not dominate the blast-radius frontier",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
