"""Figure 18: virtual-node overhead for batch sizes that already fit.

Paper: for workloads whose batch fits in one wave on the RTX 2080 Ti, the
throughput of running under VirtualFlow stays within 88.4% of vanilla
TensorFlow (the cost is one gradient-buffer aggregation per wave).  Max
batch sizes on this GPU: ResNet-50 192, Transformer 3072, BERT-LARGE 4.
"""

from __future__ import annotations


from _common import report
from repro.framework import get_workload
from repro.hardware import PerfModel, get_spec
from repro.utils.validation import power_of_two_like_sizes

WORKLOADS = ("resnet50_imagenet", "transformer_wmt", "bert_large_glue")
FRACTIONS = (8, 4, 2, 1)
PAPER_MAX = {"resnet50_imagenet": 192, "transformer_wmt": 3072,
             "bert_large_glue": 4}


def _run():
    perf = PerfModel()
    spec = get_spec("RTX2080Ti")
    out = {}
    for name in WORKLOADS:
        wl = get_workload(name)
        cap = wl.footprint.max_batch(spec.memory_bytes, wl.optimizer_slots)
        max_b = power_of_two_like_sizes(cap)[-1]
        ratios = {}
        for frac in FRACTIONS:
            b = max_b // frac
            if b < 1:
                ratios[frac] = None
                continue
            vanilla = b / perf.vanilla_step_time(wl, spec, b)
            vf = b / perf.device_step_time(wl, spec, [b])
            ratios[frac] = vf / vanilla
        out[name] = (max_b, ratios)
    return out


def test_fig18_in_memory_overhead(benchmark):
    results = benchmark(_run)
    rows = []
    for name, (max_b, ratios) in results.items():
        rows.append([name, max_b] + [
            f"{ratios[f]:.3f}" if ratios[f] is not None else "N/A"
            for f in FRACTIONS
        ])
    report("fig18_overhead",
           ["workload", "max batch"] + [f"1/{f} max" if f > 1 else "max"
                                        for f in FRACTIONS],
           rows, title="Fig 18: throughput vs vanilla for in-memory batches "
                       "(RTX 2080 Ti)",
           notes="paper: always within 88.4% of vanilla throughput")
    for name, (max_b, ratios) in results.items():
        assert max_b == PAPER_MAX[name]  # calibration anchors
        for ratio in ratios.values():
            if ratio is not None:
                assert ratio > 0.85      # paper floor: 88.4%
                assert ratio <= 1.0 + 1e-9
    # BERT-LARGE at 1/8 of max batch (0.5 examples) is N/A, as in the paper.
    assert results["bert_large_glue"][1][8] is None
