"""Figure 14: heterogeneous solver predictions vs actual throughput.

Paper: across the Table 4 configurations, the solver's profile-based
predictions land within 5.6% of measured throughput on average.  Here
"actual" is the ground-truth performance model; the solver predicts from
noisy offline profiles, so the gap is the profiling error.
"""

from __future__ import annotations

import numpy as np

from _common import report
from repro.core import ExecutionPlan
from repro.framework import get_workload
from repro.hetero import HeterogeneousSolver, TypeAssignment, materialize
from repro.profiler import OfflineProfiler

TABLE4 = {
    "H1a": [("V100", 2, 2048, 8), ("P100", 2, 2048, 8)],
    "H1b": [("V100", 2, 3072, 16), ("P100", 2, 1024, 4)],
    "H1c": [("V100", 2, 3072, 32), ("P100", 2, 1024, 4)],
    "H2a": [("V100", 2, 3072, 16), ("P100", 4, 512, 2)],
    "H2b": [("V100", 2, 3072, 16), ("P100", 4, 512, 4)],
    "H2c": [("V100", 2, 3072, 16), ("P100", 4, 512, 8)],
    "H2d": [("V100", 2, 3072, 16), ("P100", 4, 512, 16)],
    "H3": [("V100", 2, 2048, 8), ("P100", 8, 512, 2)],
}


def _run():
    store = OfflineProfiler(noise=0.02, steps_per_point=20, seed=9).profile_all(
        "resnet50_imagenet", ["V100", "P100"])
    solver = HeterogeneousSolver("resnet50_imagenet", store)
    wl = get_workload("resnet50_imagenet")
    results = {}
    for name, cfg in TABLE4.items():
        assignments = [TypeAssignment(t, n, bs, vn) for t, n, bs, vn in cfg]
        predicted = solver.predict_assignment(assignments)
        _, _, mapping = materialize(predicted)
        actual = ExecutionPlan(wl, mapping).throughput()
        results[name] = (predicted.predicted_throughput, actual)
    return results


def test_fig14_solver_prediction_accuracy(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    errors = []
    rows = []
    for name, (pred, actual) in results.items():
        err = abs(pred - actual) / actual
        errors.append(err)
        rows.append([name, f"{actual:.0f}", f"{pred:.0f}", f"{err:.1%}"])
    avg = float(np.mean(errors))
    report("fig14_solver_accuracy",
           ["config", "actual img/s", "solver img/s", "error"], rows,
           title="Fig 14: solver-predicted vs actual throughput",
           notes=f"average error {avg:.1%} (paper: 5.6%)")
    assert avg < 0.10          # paper: 5.6% average
    assert max(errors) < 0.20  # no wild outliers
