"""Table 1 + Figure 8: reproducibility of ResNet-50/ImageNet across GPUs.

Paper: with the batch size fixed at 8192 and 32 total virtual nodes,
VirtualFlow reproduces the 76% target accuracy on 1-16 V100s and even on
RTX 2080 Ti GPUs, while TF* (local batch pinned to hardware, no LR retuning)
diverges badly on small clusters.

The miniature uses the ResNet-56/CIFAR-10 stand-in with batch 256, 16 total
virtual nodes, and a learning rate tuned once for that batch.  TF* runs with
a per-device batch of 16 — so its global batch *changes* with the cluster
(16, 32, 64, 128) and the once-tuned learning rate is far too hot for the
small ones.
"""

from __future__ import annotations


from _common import report, save_series
from repro import TrainerConfig, VirtualFlowTrainer
from repro.baselines import TFStarConfig, TFStarTrainer

GLOBAL_BATCH = 256
TOTAL_VNS = 16
EPOCHS = 40
DATASET = 2048
SEED = 7
LR = 0.6  # tuned once, for the batch-256 configuration
GPU_COUNTS = (1, 2, 4, 8, 16)
TFSTAR_LOCAL_BATCH = 16


def _vf_run(num_devices: int, device_type: str = "V100"):
    trainer = VirtualFlowTrainer(TrainerConfig(
        workload="resnet56_cifar10", global_batch_size=GLOBAL_BATCH,
        num_virtual_nodes=TOTAL_VNS, device_type=device_type,
        num_devices=num_devices, dataset_size=DATASET, seed=SEED,
        learning_rate=LR))
    trainer.train(epochs=EPOCHS)
    return trainer


def _tfstar_run(num_devices: int):
    trainer = TFStarTrainer(TFStarConfig(
        workload="resnet56_cifar10", local_batch_size=TFSTAR_LOCAL_BATCH,
        device_type="V100", num_devices=num_devices, dataset_size=DATASET,
        seed=SEED, learning_rate=LR))
    trainer.train(epochs=EPOCHS)
    return trainer


def _run():
    vf = {n: _vf_run(n) for n in GPU_COUNTS}
    vf["2080ti"] = _vf_run(2, device_type="RTX2080Ti")
    tf = {n: _tfstar_run(n) for n in (1, 2, 4, 8)}
    return vf, tf


def test_table1_fig08_resnet_reproducibility(benchmark):
    vf, tf = benchmark.pedantic(_run, rounds=1, iterations=1)
    target = vf[1].history[-1].val_accuracy
    rows = []
    for n in GPU_COUNTS:
        t = tf.get(n)
        rows.append([
            n, GLOBAL_BATCH, TOTAL_VNS // min(n, TOTAL_VNS),
            f"{vf[n].history[-1].val_accuracy:.4f}",
            TFSTAR_LOCAL_BATCH * n if t else "-",
            f"{t.history[-1].val_accuracy:.4f}" if t else "-",
        ])
    rows.append(["2 (2080Ti)", GLOBAL_BATCH, TOTAL_VNS // 2,
                 f"{vf['2080ti'].history[-1].val_accuracy:.4f}", "-", "-"])
    rows.append(["target", GLOBAL_BATCH, "-", f"{target:.4f}", "-", "-"])
    report("table1_resnet_repro",
           ["GPUs", "VF batch", "VN/GPU", "VF acc", "TF* batch", "TF* acc"],
           rows, title="Table 1: final accuracy, ResNet stand-in, batch fixed at 256",
           notes="paper: VF hits 76% +/- 0.5% on 1-16 GPUs; TF* drops to 69% on 1 GPU")

    save_series("fig08_convergence", "epoch " + " ".join(
        [f"vf_{n}gpu" for n in GPU_COUNTS] + ["tf_1gpu", "tf_8gpu"]), [
        " ".join([str(e)] +
                 [f"{vf[n].history[e].val_accuracy:.4f}" for n in GPU_COUNTS] +
                 [f"{tf[1].history[e].val_accuracy:.4f}",
                  f"{tf[8].history[e].val_accuracy:.4f}"])
        for e in range(EPOCHS)
    ])

    # VirtualFlow: every device count — and the other GPU type — lands on the
    # SAME final accuracy (we guarantee bit-exactness, stronger than +/-0.5%).
    for n in GPU_COUNTS:
        assert vf[n].history[-1].val_accuracy == target
    assert vf["2080ti"].history[-1].val_accuracy == target
    # The entire trajectory matches, not just the final point (Fig 8).
    for n in GPU_COUNTS[1:]:
        assert [h.val_accuracy for h in vf[n].history] == \
               [h.val_accuracy for h in vf[1].history]
    # TF*: small clusters (tiny batches, untuned LR) diverge far below target.
    assert tf[1].history[-1].val_accuracy < target - 0.2
    assert tf[2].history[-1].val_accuracy < target - 0.2
    # The target itself is a converged model, not a degenerate one.
    assert target > 0.8
