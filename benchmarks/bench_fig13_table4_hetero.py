"""Table 4 + Figure 13: heterogeneous training throughput and accuracy.

Paper configurations for ResNet-50/ImageNet at batch 8192 (BS/GPU, VN/GPU):

  H1a: 2xV100 2048/8  + 2xP100 2048/8
  H1b: 2xV100 3072/16 + 2xP100 1024/4
  H1c: 2xV100 3072/32 + 2xP100 1024/4
  H2a-d: 2xV100 3072/16 + 4xP100 512/{2,4,8,16}
  H3:  2xV100 2048/8  + 8xP100 512/2

Fig 13: H3 beats V100-only by 42.3% and P100-only by 52.4%, while reaching
the same 76% accuracy.  The accuracy claim is verified structurally: our
weighted synchronization makes heterogeneous runs bit-identical to
homogeneous ones (asserted in the miniature training check below).
"""

from __future__ import annotations

import numpy as np

from _common import report
from repro import TrainerConfig, VirtualFlowTrainer
from repro.core import ExecutionPlan, Mapping, VirtualNodeSet
from repro.framework import get_workload
from repro.hardware import Cluster
from repro.hetero import HeteroAssignment, TypeAssignment, materialize

TABLE4 = {
    "H1a": [("V100", 2, 2048, 8), ("P100", 2, 2048, 8)],
    "H1b": [("V100", 2, 3072, 16), ("P100", 2, 1024, 4)],
    "H1c": [("V100", 2, 3072, 32), ("P100", 2, 1024, 4)],
    "H2a": [("V100", 2, 3072, 16), ("P100", 4, 512, 2)],
    "H2b": [("V100", 2, 3072, 16), ("P100", 4, 512, 4)],
    "H2c": [("V100", 2, 3072, 16), ("P100", 4, 512, 8)],
    "H2d": [("V100", 2, 3072, 16), ("P100", 4, 512, 16)],
    "H3": [("V100", 2, 2048, 8), ("P100", 8, 512, 2)],
}
HOMOGENEOUS = {
    "2 V100 only": ("V100", 2),
    "2 P100 only": ("P100", 2),
    "4 P100 only": ("P100", 4),
    "8 P100 only": ("P100", 8),
}
BATCH = 8192


def _hetero_throughput(config) -> float:
    assignment = HeteroAssignment(
        assignments=tuple(TypeAssignment(t, n, bs, vn) for t, n, bs, vn in config),
        predicted_step_time=1.0, predicted_throughput=1.0)
    _, _, mapping = materialize(assignment)
    return ExecutionPlan(get_workload("resnet50_imagenet"), mapping).throughput()


def _homogeneous_throughput(device_type: str, n: int) -> float:
    wl = get_workload("resnet50_imagenet")
    per_device = BATCH // n
    # Smallest wave split that fits device memory, as the solver would pick.
    from repro.hetero.solver import _min_vn_count
    from repro.hardware import get_spec
    from repro.utils.validation import power_of_two_like_sizes

    cap = wl.footprint.max_batch(get_spec(device_type).memory_bytes,
                                 wl.optimizer_slots)
    max_wave = power_of_two_like_sizes(cap)[-1]
    v = _min_vn_count(per_device, max_wave)
    vn_set = VirtualNodeSet.even(BATCH, n * v)
    mapping = Mapping.even(vn_set, Cluster.homogeneous(device_type, n))
    return ExecutionPlan(wl, mapping).throughput()


def _mini_accuracy_check():
    """Heterogeneous mini-run vs single-device run: bit-identical (Fig 13 acc)."""
    cluster = Cluster.from_counts({"V100": 1, "P100": 1})
    vn_set = VirtualNodeSet.uneven([24, 8])
    mapping = Mapping.by_counts(vn_set, cluster, {0: 1, 1: 1})  # P100 id 0
    hetero = VirtualFlowTrainer(
        TrainerConfig(workload="resnet56_cifar10", global_batch_size=32,
                      num_virtual_nodes=2, vn_sizes=[24, 8], dataset_size=512,
                      seed=4),
        cluster=cluster, mapping=mapping)
    homog = VirtualFlowTrainer(TrainerConfig(
        workload="resnet56_cifar10", global_batch_size=32, num_virtual_nodes=2,
        vn_sizes=[24, 8], num_devices=1, dataset_size=512, seed=4))
    hetero.train(epochs=2)
    homog.train(epochs=2)
    return hetero, homog


def _run():
    hetero = {name: _hetero_throughput(cfg) for name, cfg in TABLE4.items()}
    homog = {name: _homogeneous_throughput(t, n)
             for name, (t, n) in HOMOGENEOUS.items()}
    return hetero, homog, _mini_accuracy_check()


def test_fig13_table4_hetero_throughput(benchmark):
    hetero, homog, (mini_het, mini_hom) = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    v100_only = homog["2 V100 only"]
    rows = [[name, f"{tput:.0f}", f"{tput / v100_only:.2f}x"]
            for name, tput in {**homog, **hetero}.items()]
    report("fig13_table4_hetero", ["configuration", "img/s", "vs 2xV100"], rows,
           title="Fig 13 / Table 4: heterogeneous training throughput "
                 f"(ResNet-50, batch {BATCH})",
           notes="paper: H3 +42.3% vs V100-only, +52.4% vs 8xP100-only")
    # Global batch is conserved by every Table 4 configuration.
    for cfg in TABLE4.values():
        assert sum(n * bs for _, n, bs, _ in cfg) == BATCH
    # Paper shapes:
    # (1) H3 is the best heterogeneous configuration ...
    assert hetero["H3"] == max(hetero.values())
    # (2) ... beating V100-only by a Fig 13-scale factor ...
    speedup = hetero["H3"] / v100_only - 1
    # Our simulator scales heterogeneous sync more optimistically than the
    # real testbed (no cross-type jitter), so the ceiling is looser.
    assert 0.25 < speedup < 1.1  # paper: 42.3%
    # (3) ... and the 8-P100-only configuration too.
    assert hetero["H3"] > homog["8 P100 only"] * 1.2
    # (4) H2 > H1: more P100s balance better.
    assert max(hetero[k] for k in ("H2a", "H2b", "H2c", "H2d")) > \
        max(hetero[k] for k in ("H1a", "H1b", "H1c"))
    # (5) The even split H1a is the worst of the H1 group (Fig 7's lesson).
    assert hetero["H1a"] <= min(hetero["H1b"], hetero["H1c"]) * 1.001
    # Fig 13 accuracy: heterogeneous == homogeneous, bit-exactly.
    ph = mini_het.executor.model.parameters()
    pm = mini_hom.executor.model.parameters()
    assert all(np.array_equal(ph[k], pm[k]) for k in ph)
