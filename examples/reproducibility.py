#!/usr/bin/env python
"""Reproducibility across hardware (paper §6.2, Table 1 / Figure 8 in miniature).

Trains the same image-classification workload with a fixed global batch size
across 1, 2, 4, and 8 GPUs under VirtualFlow, and contrasts it with the TF*
baseline, whose batch size is coupled to the hardware (local max x device
count) and therefore *changes* with the cluster — along with its accuracy.

Run:  python examples/reproducibility.py
"""

from repro import TrainerConfig, VirtualFlowTrainer
from repro.baselines import TFStarConfig, TFStarTrainer
from repro.utils import format_table

GLOBAL_BATCH = 256
TOTAL_VNS = 16
EPOCHS = 40
LEARNING_RATE = 0.6  # tuned once, for the batch-256 configuration
DATASET = 2048


def virtualflow_run(num_devices: int) -> float:
    trainer = VirtualFlowTrainer(TrainerConfig(
        workload="resnet56_cifar10", global_batch_size=GLOBAL_BATCH,
        num_virtual_nodes=TOTAL_VNS, device_type="V100",
        num_devices=num_devices, dataset_size=DATASET, seed=7,
        learning_rate=LEARNING_RATE,
    ))
    trainer.train(epochs=EPOCHS)
    return trainer.history[-1].val_accuracy


def tfstar_run(num_devices: int, local_batch: int) -> float:
    # TF*: the global batch silently shrinks with the cluster.
    trainer = TFStarTrainer(TFStarConfig(
        workload="resnet56_cifar10", local_batch_size=local_batch,
        device_type="V100", num_devices=num_devices, dataset_size=DATASET, seed=7,
        learning_rate=LEARNING_RATE,
    ))
    trainer.train(epochs=EPOCHS)
    return trainer.history[-1].val_accuracy


def main() -> None:
    rows = []
    for n in (1, 2, 4, 8):
        vf_acc = virtualflow_run(n)
        # TF* uses a fixed local batch of 16 per device, so its global batch
        # is 16*n — only at n=16 would it match the VirtualFlow batch of 256.
        tf_acc = tfstar_run(n, local_batch=16)
        rows.append([n, GLOBAL_BATCH, TOTAL_VNS // n, f"{vf_acc:.4f}",
                     16 * n, f"{tf_acc:.4f}"])
    print(format_table(
        ["GPUs", "VF batch", "VN/GPU", "VF acc", "TF* batch", "TF* acc"],
        rows,
        title=f"Final validation accuracy after {EPOCHS} epochs "
              f"(VirtualFlow batch fixed at {GLOBAL_BATCH})",
    ))
    accs = [float(r[3]) for r in rows]
    print(f"\nVirtualFlow accuracy spread across cluster sizes: "
          f"{max(accs) - min(accs):.4f} (identical trajectories => 0)")


if __name__ == "__main__":
    main()
