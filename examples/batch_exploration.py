#!/usr/bin/env python
"""Hyperparameter (batch size) exploration on fixed hardware (paper §6.3, Fig 9).

Holding the hardware at a single GPU, vary the number of virtual nodes — and
therefore the global batch size — beyond what the device's memory could hold
in one piece.  Each batch size follows its own convergence trajectory; some
previously inaccessible batch sizes reach better final accuracy (the paper's
Figure 2 RTE result).

Run:  python examples/batch_exploration.py
"""

from repro import TrainerConfig, VirtualFlowTrainer
from repro.utils import format_table

EPOCHS = 8
DATASET = 2048


def main() -> None:
    rows = []
    curves = {}
    for batch in (8, 16, 32, 64, 128):
        vns = max(1, batch // 8)  # per-wave batch of 8 fits the device
        trainer = VirtualFlowTrainer(TrainerConfig(
            workload="bert_base_glue", global_batch_size=batch,
            num_virtual_nodes=vns, device_type="RTX2080Ti", num_devices=1,
            dataset_size=DATASET, seed=5,
        ))
        trainer.train(epochs=EPOCHS)
        curves[batch] = [h.val_accuracy for h in trainer.history]
        rows.append([batch, vns, f"{trainer.history[-1].val_accuracy:.4f}",
                     f"{max(curves[batch]):.4f}"])
    print(format_table(
        ["global batch", "virtual nodes", "final acc", "best acc"],
        rows,
        title=f"Batch-size exploration on a single RTX 2080 Ti ({EPOCHS} epochs)"))
    print("\nper-epoch validation accuracy:")
    for batch, curve in curves.items():
        series = " ".join(f"{acc:.3f}" for acc in curve)
        print(f"  B={batch:4d}: {series}")


if __name__ == "__main__":
    main()
