#!/usr/bin/env python
"""Resource elasticity (paper §4, §6.4).

Part 1 — mechanism: a single job resizes 4 -> 2 -> 8 -> 1 GPUs mid-training
and still produces exactly the model an uninterrupted run produces.

Part 2 — policy: the three-job trace of §6.4.1 runs under the elastic
weighted-fair-sharing scheduler and under a static priority scheduler; the
elastic scheduler cuts the makespan and the high-priority job's completion
time while every job keeps its convergence semantics.

Run:  python examples/elastic_training.py
"""

import numpy as np

from repro import TrainerConfig, VirtualFlowTrainer
from repro.elastic import (
    ClusterSimulator,
    ElasticWFSScheduler,
    StaticPriorityScheduler,
    compute_metrics,
    three_job_trace,
)
from repro.utils import format_duration, format_table


def mechanism_demo() -> None:
    print("=== Part 1: resize mechanism ===")
    config = TrainerConfig(workload="resnet56_cifar10", global_batch_size=64,
                           num_virtual_nodes=8, num_devices=4, dataset_size=1024, seed=3)
    elastic = VirtualFlowTrainer(config)
    schedule = [(1, 2), (2, 8), (3, 1)]  # (after epoch, new device count)
    for epoch in range(4):
        record = elastic.train_epoch()
        print(f"epoch {record.epoch}: loss {record.train_loss:.4f} on "
              f"{len(elastic.cluster)} GPU(s), sim time {record.sim_time:.2f}s")
        for at_epoch, devices in schedule:
            if record.epoch + 1 == at_epoch + 0:
                pass
        if epoch < len(schedule):
            _, devices = schedule[epoch]
            migration = elastic.resize(devices)
            print(f"  -> resized to {devices} GPU(s) "
                  f"(migration {migration*1e3:.1f} ms)")

    steady = VirtualFlowTrainer(config)
    steady.train(epochs=4)
    p1 = elastic.executor.model.parameters()
    p2 = steady.executor.model.parameters()
    same = all(np.array_equal(p1[k], p2[k]) for k in p1)
    print(f"elastic run == uninterrupted run (bit-exact): {same}\n")


def policy_demo() -> None:
    print("=== Part 2: elastic WFS vs static priority (3-job trace) ===")
    trace = three_job_trace()
    rows = []
    results = {}
    for scheduler in (ElasticWFSScheduler(), StaticPriorityScheduler()):
        result = ClusterSimulator(total_gpus=4, scheduler=scheduler).run(trace)
        metrics = compute_metrics(result)
        results[scheduler.name] = metrics
        rows.append([
            scheduler.name,
            format_duration(metrics.makespan),
            format_duration(metrics.jcts[0]),
            format_duration(metrics.jcts[1]),
            format_duration(metrics.jcts[2]),
            f"{metrics.utilization:.1%}",
        ])
    print(format_table(
        ["scheduler", "makespan", "JCT job0", "JCT job1", "JCT job2 (high pri)", "util"],
        rows))
    wfs = results["virtualflow-wfs"]
    pri = results["static-priority"]
    print(f"\nmakespan reduction: "
          f"{(pri.makespan - wfs.makespan) / pri.makespan:.1%}")
    print(f"high-priority JCT reduction: "
          f"{(pri.jcts[2] - wfs.jcts[2]) / pri.jcts[2]:.1%}")


if __name__ == "__main__":
    mechanism_demo()
    policy_demo()
