#!/usr/bin/env python
"""Inference serving under virtual nodes.

The virtual node abstraction covers inference too: a trained model serves
requests with the batch split across virtual nodes, so the same serving job
runs on a big cluster (low latency) or a single small GPU (higher latency),
with identical predictions.  Here we train a model, then serve the
validation set on three different hardware shapes and compare latency.

Run:  python examples/inference_serving.py
"""

import numpy as np

from repro import TrainerConfig, VirtualFlowTrainer
from repro.core import InferenceEngine, Mapping, VirtualNodeSet
from repro.hardware import Cluster
from repro.utils import format_table


def main() -> None:
    trainer = VirtualFlowTrainer(TrainerConfig(
        workload="resnet56_cifar10", global_batch_size=64,
        num_virtual_nodes=8, num_devices=4, dataset_size=1024, seed=30))
    trainer.train(epochs=4)
    print(f"trained to val acc {trainer.history[-1].val_accuracy:.4f}\n")

    model = trainer.executor.model
    workload = trainer.workload
    vn_set = VirtualNodeSet.even(64, 8)
    x = trainer.dataset.x_val[:64]

    rows = []
    reference = None
    for label, cluster in [
        ("4x V100", Cluster.homogeneous("V100", 4)),
        ("1x V100", Cluster.homogeneous("V100", 1)),
        ("1x K80", Cluster.homogeneous("K80", 1)),
    ]:
        engine = InferenceEngine(workload, model,
                                 Mapping.even(vn_set, cluster))
        result = engine.predict(x)
        if reference is None:
            reference = result.logits
        identical = np.array_equal(result.logits, reference)
        rows.append([label, result.waves, f"{result.sim_latency*1e3:.1f}",
                     identical])
    print(format_table(
        ["hardware", "waves (bottleneck)", "latency (ms)", "same predictions"],
        rows, title="Serving a 64-example batch across hardware shapes"))


if __name__ == "__main__":
    main()
