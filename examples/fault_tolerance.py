#!/usr/bin/env python
"""Fault tolerance and portable checkpoints (paper §7).

A 4-GPU training job loses two workers mid-epoch; its virtual nodes migrate
to the survivors and training continues uninterrupted — and bit-identically
to a run that never saw a failure.  A checkpoint saved before the failure
restores onto a *different* cluster shape, because checkpoints capture only
virtual-node-level state, never the mapping.

Run:  python examples/fault_tolerance.py
"""

import os
import tempfile

import numpy as np

from repro import TrainerConfig, VirtualFlowTrainer
from repro.core import (
    Mapping,
    handle_device_failure,
    load_checkpoint,
    restore_device,
    save_checkpoint,
)
from repro.hardware import Cluster


def make_trainer() -> VirtualFlowTrainer:
    return VirtualFlowTrainer(TrainerConfig(
        workload="resnet56_cifar10", global_batch_size=64,
        num_virtual_nodes=8, num_devices=4, dataset_size=1024, seed=21,
    ))


def main() -> None:
    print("=== Failure mid-training ===")
    faulty = make_trainer()
    faulty.train_epoch()
    print(f"epoch 0 done on {faulty.mapping}")

    ckpt = os.path.join(tempfile.mkdtemp(), "epoch0.npz")
    save_checkpoint(faulty.executor, ckpt)

    migration = handle_device_failure(faulty.executor, [0, 3])
    print(f"devices 0 and 3 failed; virtual nodes migrated in "
          f"{migration*1e3:.1f} ms -> {faulty.mapping}")
    faulty.train_epoch()

    restore_device(faulty.executor, Cluster.homogeneous("V100", 4))
    print(f"replacements arrived -> {faulty.mapping}")
    faulty.train_epoch()

    steady = make_trainer()
    steady.train(epochs=3)
    pf = faulty.executor.model.parameters()
    ps = steady.executor.model.parameters()
    print(f"failure was semantically invisible (bit-exact): "
          f"{all(np.array_equal(pf[k], ps[k]) for k in pf)}")

    print("\n=== Checkpoint portability ===")
    # Restore the epoch-0 checkpoint onto a 2x RTX 2080 Ti cluster.
    resumed = make_trainer()
    load_checkpoint(resumed.executor, ckpt)
    resumed.remap(Mapping.even(resumed.executor.vn_set,
                               Cluster.homogeneous("RTX2080Ti", 2)))
    resumed._epochs_done = 1  # continue from epoch 1
    resumed.train_epoch(epoch=1)
    resumed.train_epoch(epoch=2)
    pr = resumed.executor.model.parameters()
    print(f"resumed on 2x2080Ti == uninterrupted 4xV100 run: "
          f"{all(np.array_equal(pr[k], ps[k]) for k in pr)}")
    os.remove(ckpt)


if __name__ == "__main__":
    main()
