#!/usr/bin/env python
"""Quickstart: train a workload under virtual node processing.

Demonstrates the core promise of VirtualFlow: pick hyperparameters once
(global batch size + virtual node count), then run the *same* job on any
hardware — here a 4-GPU cluster, then resized live down to 1 GPU — with a
bit-identical convergence trajectory.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TrainerConfig, VirtualFlowTrainer


def main() -> None:
    config = TrainerConfig(
        workload="mlp_synthetic",     # registered workload (model + dataset + footprint)
        global_batch_size=64,         # application-level hyperparameter
        num_virtual_nodes=8,          # fixed for the lifetime of the job
        device_type="V100",
        num_devices=4,                # systems-level choice; free to change
        dataset_size=2048,
        seed=42,
    )
    trainer = VirtualFlowTrainer(config)
    print(f"cluster: {trainer.cluster}")
    print(f"mapping: {trainer.mapping}")
    print(trainer.executor.plan.describe())
    print()

    print("epoch | train loss | val acc | simulated time")
    for record in trainer.train(epochs=3):
        print(f"{record.epoch:5d} | {record.train_loss:10.4f} | "
              f"{record.val_accuracy:7.4f} | {record.sim_time:8.2f}s")

    # Resize live: 4 GPUs -> 1 GPU. Virtual nodes are redistributed; model
    # semantics (and the remaining trajectory) are untouched.
    migration = trainer.resize(num_devices=1)
    print(f"\nresized 4 -> 1 GPU (migration {migration*1e3:.1f} ms); "
          f"new mapping: {trainer.mapping}")
    for record in trainer.train(epochs=2):
        print(f"{record.epoch:5d} | {record.train_loss:10.4f} | "
              f"{record.val_accuracy:7.4f} | {record.sim_time:8.2f}s")

    # Prove the headline guarantee: an uninterrupted 1-GPU run of the same
    # config lands on bit-identical parameters.
    reference = VirtualFlowTrainer(TrainerConfig(
        workload="mlp_synthetic", global_batch_size=64, num_virtual_nodes=8,
        device_type="V100", num_devices=1, dataset_size=2048, seed=42,
    ))
    reference.train(epochs=5)
    ours = trainer.executor.model.parameters()
    ref = reference.executor.model.parameters()
    identical = all(np.array_equal(ours[k], ref[k]) for k in ours)
    print(f"\nbit-identical to an uninterrupted 1-GPU run: {identical}")


if __name__ == "__main__":
    main()
