#!/usr/bin/env python
"""Heterogeneous training (paper §5, §6.5).

Profiles ResNet-50 on every device type, asks the heterogeneous solver for
the best way to spread a batch of 8192 over 2 V100s + 2 P100s (the Figure 7
scenario), compares even vs uneven vs solver splits, and finally *trains* a
miniature workload across mixed device types to show the weighted gradient
synchronization preserves exact semantics.

Run:  python examples/heterogeneous_training.py
"""

import numpy as np

from repro import TrainerConfig, VirtualFlowTrainer
from repro.core import Mapping, VirtualNodeSet
from repro.hardware import Cluster
from repro.hetero import HeterogeneousSolver, TypeAssignment, materialize
from repro.profiler import OfflineProfiler
from repro.utils import format_table


def solver_demo() -> None:
    print("=== Offline profiling + solver (Figure 7 scenario) ===")
    profiler = OfflineProfiler(seed=11)
    store = profiler.profile_all("resnet50_imagenet", ["V100", "P100"])
    for t in ("V100", "P100"):
        profile = store.get("resnet50_imagenet", t)
        peak = profile.curve()[-1]
        print(f"{t}: profiled {len(profile.batch_sizes)} batch sizes, "
              f"throughput at b={peak[0]}: {peak[1]:.0f} img/s")

    solver = HeterogeneousSolver("resnet50_imagenet", store)
    even = solver.predict_assignment([
        TypeAssignment("V100", 2, 2048, 8), TypeAssignment("P100", 2, 2048, 8)])
    uneven = solver.predict_assignment([
        TypeAssignment("V100", 2, 3072, 16), TypeAssignment("P100", 2, 1024, 4)])
    best = solver.solve({"V100": 2, "P100": 2}, global_batch=8192)
    rows = [
        ["even 2048:2048", f"{even.predicted_step_time:.2f}", f"{even.predicted_throughput:.0f}"],
        ["uneven 3072:1024", f"{uneven.predicted_step_time:.2f}", f"{uneven.predicted_throughput:.0f}"],
        ["solver best", f"{best.predicted_step_time:.2f}", f"{best.predicted_throughput:.0f}"],
    ]
    print(format_table(["configuration", "step time (s)", "throughput (img/s)"], rows))
    print(f"solver picked: {best.describe()}")
    cluster, vn_set, mapping = materialize(best)
    print(f"materialized: {cluster} / {vn_set} / {mapping}\n")


def correctness_demo() -> None:
    print("=== Mixed-type training preserves semantics exactly ===")
    # 2 V100s + 2 P100s; uneven virtual nodes: V100s take 3x the data.
    cluster = Cluster.from_counts({"V100": 2, "P100": 2})
    vn_set = VirtualNodeSet.uneven([24, 24, 8, 8])  # B = 64
    # Device ids: P100s get ids 0,1 and V100s 2,3 (sorted by type name).
    mapping = Mapping.by_counts(vn_set, cluster, {0: 1, 1: 1, 2: 1, 3: 1})
    hetero = VirtualFlowTrainer(
        TrainerConfig(workload="mlp_synthetic", global_batch_size=64,
                      num_virtual_nodes=4, vn_sizes=[24, 24, 8, 8],
                      dataset_size=1024, seed=9),
        cluster=cluster, mapping=mapping,
    )
    hetero.train(epochs=3)

    homog = VirtualFlowTrainer(TrainerConfig(
        workload="mlp_synthetic", global_batch_size=64, num_virtual_nodes=4,
        vn_sizes=[24, 24, 8, 8], num_devices=1, dataset_size=1024, seed=9))
    homog.train(epochs=3)

    ph = hetero.executor.model.parameters()
    p1 = homog.executor.model.parameters()
    print(f"heterogeneous == single-GPU run (bit-exact): "
          f"{all(np.array_equal(ph[k], p1[k]) for k in ph)}")
    print(f"final accuracy: {hetero.history[-1].val_accuracy:.4f} "
          f"(simulated step time {hetero.executor.plan.step_time():.4f}s on "
          f"{hetero.cluster})")


if __name__ == "__main__":
    solver_demo()
    correctness_demo()
